/// \file rules.cpp
/// The built-in gap::lint rule catalog. Each rule is a pure scan over the
/// LintContext; docs/static-analysis.md documents every rule with its
/// default severity and the knobs that feed it.

#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <utility>

#include <bit>

#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "netlist/checks.hpp"

namespace gap::lint {

namespace {

using common::Severity;
using netlist::Netlist;
using netlist::StructuralViolation;
using netlist::VerilogViolation;

/// Shortest round-trippable rendering of a double (matches the writers).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Nets invented by the lenient Verilog reader to repair connectivity;
/// the repair itself is already reported (GL-S001/GL-S003), so derived
/// rules skip them instead of piling on secondary noise.
bool is_synthetic(const std::string& name) {
  return name.rfind(netlist::kSyntheticNetPrefix, 0) == 0;
}

Finding make(AnchorKind anchor, std::string name, std::string message,
             common::SourceLoc loc = {}) {
  Finding f;
  f.anchor = anchor;
  f.anchor_name = std::move(name);
  f.message = std::move(message);
  f.loc = loc;
  return f;
}

/// Drive strength and (when the driver is an instance) the driving cell
/// of a net. Returns drive <= 0 for undriven nets and for primary inputs
/// with a non-positive external drive — callers skip those (GL-S002 and
/// GL-K003 own them).
struct DriverModel {
  double drive = 0.0;
  const library::Cell* cell = nullptr;
};

DriverModel driver_model(const Netlist& nl, NetId id) {
  const netlist::Net& n = nl.net(id);
  DriverModel m;
  switch (n.driver.kind) {
    case netlist::NetDriver::Kind::kInstance:
      m.drive = nl.drive_of(n.driver.inst);
      m.cell = &nl.cell_of(n.driver.inst);
      break;
    case netlist::NetDriver::Kind::kPrimaryInput:
      m.drive = nl.port(n.driver.port).ext_drive;
      break;
    case netlist::NetDriver::Kind::kNone:
      break;
  }
  return m;
}

/// A rule defined by its info plus a scan function.
class LambdaRule final : public Rule {
 public:
  using Fn = std::function<void(const LintContext&, std::vector<Finding>&)>;
  LambdaRule(RuleInfo info, Fn fn)
      : info_(std::move(info)), fn_(std::move(fn)) {}

  [[nodiscard]] const RuleInfo& info() const override { return info_; }
  void run(const LintContext& ctx, std::vector<Finding>& out) const override {
    fn_(ctx, out);
  }

 private:
  RuleInfo info_;
  Fn fn_;
};

void add_rule(RuleRegistry& reg, const char* id, Category cat, Severity sev,
              const char* title, LambdaRule::Fn fn) {
  reg.add(std::make_unique<LambdaRule>(
      RuleInfo{id, cat, sev, title}, std::move(fn)));
}

/// Scan-kind filter shared by the structural rules: report the matching
/// subset of structural_scan() violations with their original messages.
void emit_scan(const LintContext& ctx,
               std::initializer_list<StructuralViolation::Kind> kinds,
               std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  for (const StructuralViolation& v : netlist::structural_scan(nl)) {
    bool match = false;
    for (auto k : kinds) match |= v.kind == k;
    if (!match) continue;
    if (v.kind == StructuralViolation::Kind::kCombinationalCycle) {
      out.push_back(make(AnchorKind::kDesign, nl.name(), v.message));
    } else if (v.inst.valid()) {
      out.push_back(
          make(AnchorKind::kInstance, nl.instance(v.inst).name, v.message));
    } else {
      const std::string& net = nl.net(v.net).name;
      if (v.kind == StructuralViolation::Kind::kUndriven &&
          is_synthetic(net)) {
        continue;  // repair artifact; the repair is reported by GL-S003
      }
      out.push_back(make(AnchorKind::kNet, net, v.message));
    }
  }
}

void emit_parse(const LintContext& ctx,
                std::initializer_list<VerilogViolation::Kind> kinds,
                std::vector<Finding>& out) {
  if (ctx.parse_violations == nullptr) return;
  for (const VerilogViolation& v : *ctx.parse_violations) {
    bool match = false;
    for (auto k : kinds) match |= v.kind == k;
    if (!match) continue;
    if (!v.net.empty()) {
      out.push_back(make(AnchorKind::kNet, v.net, v.message, v.loc));
    } else {
      out.push_back(make(AnchorKind::kInstance, v.instance, v.message, v.loc));
    }
  }
}

// --- structural ----------------------------------------------------------

void rule_multiply_driven(const LintContext& ctx, std::vector<Finding>& out) {
  emit_scan(ctx, {StructuralViolation::Kind::kMultiplyDriven}, out);
  emit_parse(ctx, {VerilogViolation::Kind::kMultiplyDriven}, out);
}

void rule_undriven(const LintContext& ctx, std::vector<Finding>& out) {
  emit_scan(ctx, {StructuralViolation::Kind::kUndriven}, out);
}

void rule_pin_connectivity(const LintContext& ctx, std::vector<Finding>& out) {
  emit_scan(ctx,
            {StructuralViolation::Kind::kSinkMismatch,
             StructuralViolation::Kind::kPinCountMismatch,
             StructuralViolation::Kind::kOutputDriverMismatch},
            out);
  emit_parse(ctx,
             {VerilogViolation::Kind::kFloatingInput,
              VerilogViolation::Kind::kUnconnectedOutput},
             out);
}

void rule_comb_cycle(const LintContext& ctx, std::vector<Finding>& out) {
  emit_scan(ctx, {StructuralViolation::Kind::kCombinationalCycle}, out);
}

void rule_unloaded_net(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  for (NetId id : nl.all_nets()) {
    const netlist::Net& n = nl.net(id);
    if (n.driver.kind != netlist::NetDriver::Kind::kInstance) continue;
    if (!n.sinks.empty() || n.extra_cap_units > 0.0) continue;
    if (is_synthetic(n.name)) continue;
    out.push_back(make(AnchorKind::kNet, n.name,
                       "net '" + n.name + "' is driven by instance '" +
                           nl.instance(n.driver.inst).name +
                           "' but has no sinks and no external load"));
  }
}

void rule_unreachable_instance(const LintContext& ctx,
                               std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  // Reverse BFS from the primary-output nets: a net "reaches" if some
  // path of (net -> driving instance -> its input nets) leads to a PO.
  std::vector<bool> reaches(nl.num_nets(), false);
  std::queue<NetId> frontier;
  for (PortId pid : nl.all_ports()) {
    const netlist::Port& p = nl.port(pid);
    if (p.is_input || !p.net.valid() || reaches[p.net.index()]) continue;
    reaches[p.net.index()] = true;
    frontier.push(p.net);
  }
  while (!frontier.empty()) {
    const netlist::Net& n = nl.net(frontier.front());
    frontier.pop();
    if (n.driver.kind != netlist::NetDriver::Kind::kInstance) continue;
    for (NetId in : nl.instance(n.driver.inst).inputs) {
      if (!in.valid() || reaches[in.index()]) continue;
      reaches[in.index()] = true;
      frontier.push(in);
    }
  }
  for (InstanceId id : nl.all_instances()) {
    const netlist::Instance& inst = nl.instance(id);
    if (!inst.output.valid() || reaches[inst.output.index()]) continue;
    if (is_synthetic(nl.net(inst.output).name)) continue;
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "output of instance '" + inst.name +
                           "' never reaches a primary output"));
  }
}

// --- electrical ----------------------------------------------------------

void rule_max_fanout(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  for (NetId id : nl.all_nets()) {
    const netlist::Net& n = nl.net(id);
    const DriverModel d = driver_model(nl, id);
    if (d.drive <= 0.0) continue;
    const double limit = (d.cell != nullptr && d.cell->max_fanout > 0.0)
                             ? d.cell->max_fanout
                             : ctx.limits.max_fanout;
    const double fanout = static_cast<double>(n.sinks.size());
    if (fanout <= limit) continue;
    out.push_back(make(AnchorKind::kNet, n.name,
                       "net '" + n.name + "' has fanout " + num(fanout) +
                           " exceeding the limit of " + num(limit)));
  }
}

void rule_max_load(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  const tech::Technology& t = nl.lib().technology();
  for (NetId id : nl.all_nets()) {
    const netlist::Net& n = nl.net(id);
    const DriverModel d = driver_model(nl, id);
    if (d.drive <= 0.0) continue;
    const double load = nl.net_load(id);
    const double limit =
        (d.cell != nullptr && d.cell->max_capacitance_ff > 0.0)
            ? t.cap_to_units(d.cell->max_capacitance_ff)
            : ctx.limits.max_load_units_per_drive * d.drive;
    if (load <= limit) continue;
    out.push_back(make(
        AnchorKind::kNet, n.name,
        "net '" + n.name + "' carries a load of " + num(load) +
            " unit caps, past its driver's limit of " + num(limit)));
  }
}

void rule_max_transition(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  const tech::Technology& t = nl.lib().technology();
  for (NetId id : nl.all_nets()) {
    const netlist::Net& n = nl.net(id);
    const DriverModel d = driver_model(nl, id);
    if (d.drive <= 0.0) continue;
    // Transition proxy: electrical effort plus the distributed-wire
    // Elmore term (R * C / 2; ohm * fF = 1e-3 ps), in tau.
    const double r_ohm = t.wire_r_ohm_per_um * n.length_um / n.width_multiple;
    const double c_ff = t.wire_c_ff_per_um * n.length_um;
    const double slew_tau =
        nl.net_load(id) / d.drive + t.ps_to_tau(0.5 * r_ohm * c_ff * 1e-3);
    const double limit =
        (d.cell != nullptr && d.cell->max_transition_ps > 0.0)
            ? t.ps_to_tau(d.cell->max_transition_ps)
            : ctx.limits.max_transition_tau;
    if (slew_tau <= limit) continue;
    out.push_back(make(AnchorKind::kNet, n.name,
                       "net '" + n.name + "' has transition proxy " +
                           num(slew_tau) + " tau, past the limit of " +
                           num(limit) + " tau"));
  }
}

void rule_weak_driver(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  for (NetId id : nl.all_nets()) {
    const netlist::Net& n = nl.net(id);
    if (n.length_um < ctx.limits.long_wire_um) continue;
    const DriverModel d = driver_model(nl, id);
    if (d.drive <= 0.0 || d.drive >= ctx.limits.weak_drive) continue;
    out.push_back(make(
        AnchorKind::kNet, n.name,
        "net '" + n.name + "' spans " + num(n.length_um) +
            " um but is driven at only " + num(d.drive) +
            "x; upsize the driver or insert repeaters"));
  }
}

// --- clock ---------------------------------------------------------------

void rule_clock_phase(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  const int phases = nl.lib().clock_phases;
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    if (inst.clock_phase >= 0 && inst.clock_phase < phases) continue;
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "instance '" + inst.name + "' uses clock phase " +
                           std::to_string(inst.clock_phase) +
                           " outside the library's [0, " +
                           std::to_string(phases) + ") range"));
  }
}

void rule_mixed_sequentials(const LintContext& ctx,
                            std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  std::size_t dffs = 0, latches = 0;
  for (InstanceId id : nl.all_instances()) {
    const library::Cell& c = nl.cell_of(id);
    if (c.func == library::Func::kDff) ++dffs;
    if (c.func == library::Func::kLatch) ++latches;
  }
  if (dffs == 0 || latches == 0) return;
  out.push_back(make(AnchorKind::kDesign, nl.name(),
                     "design mixes " + std::to_string(dffs) +
                         " flip-flop(s) with " + std::to_string(latches) +
                         " latch(es); pick one register style per domain"));
}

void rule_unreachable_register(const LintContext& ctx,
                               std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  // Forward BFS from the primary-input nets through instances (including
  // sequentials): a register none of whose input pins is reached can
  // never be initialized from the ports.
  std::vector<bool> reached(nl.num_nets(), false);
  std::queue<NetId> frontier;
  for (PortId pid : nl.all_ports()) {
    const netlist::Port& p = nl.port(pid);
    if (!p.is_input || !p.net.valid() || reached[p.net.index()]) continue;
    reached[p.net.index()] = true;
    frontier.push(p.net);
  }
  while (!frontier.empty()) {
    const netlist::Net& n = nl.net(frontier.front());
    frontier.pop();
    for (const netlist::NetSink& s : n.sinks) {
      if (s.kind != netlist::NetSink::Kind::kInstancePin) continue;
      const NetId outn = nl.instance(s.inst).output;
      if (!outn.valid() || reached[outn.index()]) continue;
      reached[outn.index()] = true;
      frontier.push(outn);
    }
  }
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    bool fed = false;
    for (NetId in : inst.inputs) {
      fed |= in.valid() && reached[in.index()];
    }
    if (fed) continue;
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "register '" + inst.name +
                           "' is not reachable from any primary input"));
  }
}

// --- constraint ----------------------------------------------------------

void rule_no_period(const LintContext& ctx, std::vector<Finding>& out) {
  if (ctx.constraints.period_tau.has_value()) return;
  out.push_back(make(AnchorKind::kDesign, ctx.nl->name(),
                     "no clock period constraint supplied; timing rules "
                     "cannot bound the design (set --period-tau or "
                     "[constraints] period_tau)"));
}

void rule_bad_period(const LintContext& ctx, std::vector<Finding>& out) {
  if (!ctx.constraints.period_tau.has_value()) return;
  if (*ctx.constraints.period_tau > 0.0) return;
  out.push_back(make(AnchorKind::kDesign, ctx.nl->name(),
                     "clock period constraint " +
                         num(*ctx.constraints.period_tau) +
                         " tau is not positive"));
}

void rule_port_model(const LintContext& ctx, std::vector<Finding>& out) {
  const Netlist& nl = *ctx.nl;
  for (PortId pid : nl.all_ports()) {
    const netlist::Port& p = nl.port(pid);
    if (p.is_input) {
      if (p.ext_drive > 0.0) continue;
      out.push_back(make(AnchorKind::kPort, p.name,
                         "input port '" + p.name +
                             "' has non-positive external drive " +
                             num(p.ext_drive) +
                             "; electrical rules cannot model it"));
    } else if (p.net.valid()) {
      const double load = nl.net(p.net).extra_cap_units;
      if (load > 0.0) continue;
      out.push_back(make(AnchorKind::kPort, p.name,
                         "output port '" + p.name +
                             "' has non-positive external load " + num(load) +
                             "; downstream stage is unmodeled"));
    }
  }
}

// --- domain (dataflow engine) --------------------------------------------

/// The dataflow lattice, if run_lint (or gapd) computed one. Null — e.g.
/// on a combinational cycle — silences the whole GL-D/GL-X family;
/// GL-S004 already reports the cycle itself.
const DataflowEngine* engine(const LintContext& ctx) {
  if (ctx.dataflow == nullptr || !ctx.dataflow->valid()) return nullptr;
  return ctx.dataflow;
}

/// Union lattice state over a register's data inputs (flops and latches
/// have exactly one, but stay general).
NetState data_state(const DataflowEngine& e, const Netlist& nl,
                    InstanceId id) {
  NetState s{ConstVal::kVarying, 0, 0, 0};
  for (NetId in : nl.instance(id).inputs) {
    if (!in.valid()) continue;
    const NetState& is = e.state(in);
    s.taint |= is.taint;
    s.doms |= is.doms;
    s.rsts |= is.rsts;
  }
  return s;
}

/// First stage of a recognized 2-flop synchronizer: the register's output
/// feeds exactly one sink, the data pin of another register on the same
/// clock phase. The second stage never trips GL-D001 itself — its data
/// arrives from the first stage's (own-domain) output.
bool is_sync_head(const Netlist& nl, InstanceId id) {
  const netlist::Instance& inst = nl.instance(id);
  if (!inst.output.valid()) return false;
  const netlist::Net& n = nl.net(inst.output);
  if (n.sinks.size() != 1) return false;
  const netlist::NetSink& s = n.sinks.front();
  if (s.kind != netlist::NetSink::Kind::kInstancePin) return false;
  if (!nl.is_sequential(s.inst)) return false;
  return nl.instance(s.inst).clock_phase == inst.clock_phase;
}

void rule_domain_crossing(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr || !e->domains().enabled()) return;
  const Netlist& nl = *ctx.nl;
  const DomainTable& t = e->domains();
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    const std::uint32_t own = t.mask_of_phase(inst.clock_phase);
    if ((own & kUnknownDomainBit) != 0) continue;
    const std::uint32_t doms = data_state(*e, nl, id).doms;
    if ((doms & kUnknownDomainBit) != 0) continue;  // GL-D003 owns this
    // Exactly one domain, and not the register's own: a clean crossing.
    if (std::popcount(doms) != 1 || (doms & own) != 0) continue;
    if (is_sync_head(nl, id)) continue;
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "register '" + inst.name +
                           "' captures data from clock domain '" +
                           t.describe(doms) +
                           "' without a recognized 2-flop synchronizer"));
  }
}

void rule_mixed_domains(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr || !e->domains().enabled()) return;
  const Netlist& nl = *ctx.nl;
  const DomainTable& t = e->domains();
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    const std::uint32_t own = t.mask_of_phase(inst.clock_phase);
    if ((own & kUnknownDomainBit) != 0) continue;
    const std::uint32_t doms = data_state(*e, nl, id).doms;
    if ((doms & kUnknownDomainBit) != 0) continue;  // GL-D003 owns this
    if ((doms & ~own) == 0) continue;               // own-domain only
    if (std::popcount(doms) < 2) continue;          // single foreign: GL-D001
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "register '" + inst.name +
                           "' captures data converging from clock domains '" +
                           t.describe(doms) + "'"));
  }
}

void rule_unknown_domain(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr || !e->domains().enabled() || !e->domains().declared())
    return;
  const Netlist& nl = *ctx.nl;
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const std::uint32_t doms = data_state(*e, nl, id).doms;
    if ((doms & kUnknownDomainBit) == 0) continue;
    const netlist::Instance& inst = nl.instance(id);
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "register '" + inst.name +
                           "' captures data of unresolved clock domain; "
                           "annotate its source ports (// gap: domain)"));
  }
}

void rule_reset_crossing(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr || !e->domains().enabled()) return;
  const Netlist& nl = *ctx.nl;
  const DomainTable& t = e->domains();
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    const std::uint32_t own = t.mask_of_phase(inst.clock_phase);
    const std::uint32_t rsts = data_state(*e, nl, id).rsts;
    const std::uint32_t foreign = rsts & ~own & ~kUnknownDomainBit;
    if (foreign == 0) continue;
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "register '" + inst.name +
                           "' is reached by reset domain '" +
                           t.describe(foreign) +
                           "' foreign to its own clock domain '" +
                           t.describe(own) + "'"));
  }
}

// --- dataflow (constants, dead logic, X) ---------------------------------

void rule_constant_net(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr) return;
  const Netlist& nl = *ctx.nl;
  for (NetId id : nl.all_nets()) {
    const netlist::Net& n = nl.net(id);
    if (n.driver.kind != netlist::NetDriver::Kind::kInstance) continue;
    const ConstVal v = e->state(id).cval;
    if (v == ConstVal::kVarying) continue;
    if (is_synthetic(n.name)) continue;
    out.push_back(make(AnchorKind::kNet, n.name,
                       "net '" + n.name + "' is provably constant " +
                           (v == ConstVal::kOne ? "1" : "0") +
                           "; fold the driving logic away"));
  }
}

void rule_dead_logic(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr) return;
  const Netlist& nl = *ctx.nl;
  for (InstanceId id : nl.all_instances()) {
    if (nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    if (!inst.output.valid()) continue;
    const NetId o = inst.output;
    if (e->state(o).cval != ConstVal::kVarying) continue;  // GL-X001 owns it
    if (e->observed(o)) continue;
    // Structurally dead logic is GL-S006's finding; this rule reports
    // only value-dead cones (shadowed by a constant mux select).
    if (!e->reaches_po(o)) continue;
    if (is_synthetic(nl.net(o).name)) continue;
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "instance '" + inst.name +
                           "' drives dead logic: a constant mux select "
                           "makes its output unobservable"));
  }
}

void rule_disabled_enable(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr) return;
  const Netlist& nl = *ctx.nl;
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    if (inst.inputs.empty() || !inst.inputs.front().valid()) continue;
    const netlist::Net& d = nl.net(inst.inputs.front());
    if (d.driver.kind != netlist::NetDriver::Kind::kInstance) continue;
    const InstanceId mux = d.driver.inst;
    if (nl.cell_of(mux).func != library::Func::kMux2) continue;
    const std::vector<NetId>& mins = nl.instance(mux).inputs;
    if (mins.size() != 3 || !mins[2].valid()) continue;
    const ConstVal sel = e->state(mins[2]).cval;
    if (sel == ConstVal::kVarying) continue;
    const NetId picked = mins[sel == ConstVal::kOne ? 1 : 0];
    if (picked != inst.output) continue;
    out.push_back(make(AnchorKind::kInstance, inst.name,
                       "register '" + inst.name +
                           "' can never load: its input mux select is "
                           "constant and recirculates the register's own "
                           "output"));
  }
}

void rule_no_reset(const LintContext& ctx, std::vector<Finding>& out) {
  const DataflowEngine* e = engine(ctx);
  if (e == nullptr || !e->domains().reset_discipline()) return;
  const Netlist& nl = *ctx.nl;
  for (InstanceId id : nl.all_instances()) {
    if (!nl.is_sequential(id)) continue;
    const netlist::Instance& inst = nl.instance(id);
    if (inst.has_reset) continue;
    std::string msg = "register '" + inst.name +
                      "' has no reset; its power-up state is undefined";
    if (data_state(*e, nl, id).taint != 0) {
      msg += " and recirculates uninitialized state";
    }
    out.push_back(make(AnchorKind::kInstance, inst.name, std::move(msg)));
  }
}

}  // namespace

RuleRegistry default_registry() {
  RuleRegistry reg;
  add_rule(reg, "GL-S001", Category::kStructural, Severity::kError,
           "net driven by more than one source", rule_multiply_driven);
  add_rule(reg, "GL-S002", Category::kStructural, Severity::kError,
           "net with sinks but no driver", rule_undriven);
  add_rule(reg, "GL-S003", Category::kStructural, Severity::kError,
           "pin connectivity mismatch (floating or inconsistent pins)",
           rule_pin_connectivity);
  add_rule(reg, "GL-S004", Category::kStructural, Severity::kError,
           "combinational cycle", rule_comb_cycle);
  add_rule(reg, "GL-S005", Category::kStructural, Severity::kWarning,
           "driven net with no sinks or external load", rule_unloaded_net);
  add_rule(reg, "GL-S006", Category::kStructural, Severity::kWarning,
           "instance output never reaches a primary output",
           rule_unreachable_instance);
  add_rule(reg, "GL-E001", Category::kElectrical, Severity::kWarning,
           "fanout above the driver's limit", rule_max_fanout);
  add_rule(reg, "GL-E002", Category::kElectrical, Severity::kError,
           "capacitive load above the driver's limit", rule_max_load);
  add_rule(reg, "GL-E003", Category::kElectrical, Severity::kWarning,
           "output transition proxy above the limit", rule_max_transition);
  add_rule(reg, "GL-E004", Category::kElectrical, Severity::kWarning,
           "long wire with a weak driver", rule_weak_driver);
  add_rule(reg, "GL-C001", Category::kClock, Severity::kError,
           "clock phase outside the library's range", rule_clock_phase);
  add_rule(reg, "GL-C002", Category::kClock, Severity::kWarning,
           "design mixes flip-flops and latches", rule_mixed_sequentials);
  add_rule(reg, "GL-C003", Category::kClock, Severity::kWarning,
           "register unreachable from any primary input",
           rule_unreachable_register);
  add_rule(reg, "GL-D001", Category::kDomain, Severity::kError,
           "clock-domain crossing without a synchronizer",
           rule_domain_crossing);
  add_rule(reg, "GL-D002", Category::kDomain, Severity::kWarning,
           "register captures data from multiple clock domains",
           rule_mixed_domains);
  add_rule(reg, "GL-D003", Category::kDomain, Severity::kWarning,
           "register captures data of unresolved clock domain",
           rule_unknown_domain);
  add_rule(reg, "GL-D004", Category::kDomain, Severity::kWarning,
           "foreign reset domain reaches a register", rule_reset_crossing);
  add_rule(reg, "GL-K001", Category::kConstraint, Severity::kWarning,
           "no clock period constraint supplied", rule_no_period);
  add_rule(reg, "GL-K002", Category::kConstraint, Severity::kError,
           "non-positive clock period constraint", rule_bad_period);
  add_rule(reg, "GL-K003", Category::kConstraint, Severity::kWarning,
           "port with unmodeled external drive or load", rule_port_model);
  add_rule(reg, "GL-X001", Category::kDataflow, Severity::kWarning,
           "net is provably constant", rule_constant_net);
  add_rule(reg, "GL-X002", Category::kDataflow, Severity::kWarning,
           "dead logic cone behind a constant mux select", rule_dead_logic);
  add_rule(reg, "GL-X003", Category::kDataflow, Severity::kWarning,
           "register recirculates through a constant mux select",
           rule_disabled_enable);
  add_rule(reg, "GL-X004", Category::kDataflow, Severity::kWarning,
           "register without a reset in a reset-disciplined design",
           rule_no_reset);
  return reg;
}

}  // namespace gap::lint
