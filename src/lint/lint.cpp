#include "lint/lint.hpp"

#include <algorithm>
#include <tuple>

#include <optional>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "lint/dataflow.hpp"

namespace gap::lint {

const char* to_string(Category c) {
  switch (c) {
    case Category::kStructural: return "structural";
    case Category::kElectrical: return "electrical";
    case Category::kClock: return "clock";
    case Category::kConstraint: return "constraint";
    case Category::kDomain: return "domain";
    case Category::kDataflow: return "dataflow";
  }
  return "?";
}

const char* to_string(AnchorKind k) {
  switch (k) {
    case AnchorKind::kDesign: return "design";
    case AnchorKind::kNet: return "net";
    case AnchorKind::kInstance: return "instance";
    case AnchorKind::kPort: return "port";
  }
  return "?";
}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  GAP_EXPECTS(rule != nullptr);
  GAP_EXPECTS(find(rule->info().id) == nullptr);
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(const std::string& id) const {
  for (const auto& r : rules_)
    if (r->info().id == id) return r.get();
  return nullptr;
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative '*' matching with backtracking to the last star.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

common::Severity apply_override(common::Severity def, SeverityOverride o) {
  switch (o) {
    case SeverityOverride::kOff: return def;  // handled before evaluation
    case SeverityOverride::kNote: return common::Severity::kNote;
    case SeverityOverride::kWarning: return common::Severity::kWarning;
    case SeverityOverride::kError: return common::Severity::kError;
  }
  return def;
}

}  // namespace

LintReport run_lint(const RuleRegistry& registry, const LintContext& ctx,
                    const LintConfig& config, int threads) {
  GAP_EXPECTS(ctx.nl != nullptr);

  // Resolve each rule's effective severity (or off) from the config; the
  // last override for an id wins, mirroring file order.
  std::vector<common::Severity> severity(registry.size());
  std::vector<bool> enabled(registry.size(), true);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const RuleInfo& info = registry.rule(i).info();
    severity[i] = info.default_severity;
    for (const auto& [id, level] : config.rule_levels) {
      if (id != info.id) continue;
      enabled[i] = level != SeverityOverride::kOff;
      severity[i] = apply_override(info.default_severity, level);
    }
  }

  // The GL-D/GL-X rules read the dataflow lattice. Build it on demand
  // when the caller did not supply a cached engine; a failed analysis
  // (combinational cycle — GL-S004 already owns that) leaves ctx.dataflow
  // null and those rules silent.
  LintContext eval_ctx = ctx;
  std::optional<DataflowEngine> local_engine;
  bool wants_dataflow = false;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const Category cat = registry.rule(i).info().category;
    wants_dataflow |= enabled[i] && (cat == Category::kDomain ||
                                     cat == Category::kDataflow);
  }
  if (wants_dataflow && ctx.dataflow == nullptr) {
    local_engine.emplace();
    if (local_engine->analyze(*ctx.nl, config.domains, threads).ok()) {
      eval_ctx.dataflow = &*local_engine;
    }
  }

  // Fan the rules out; each worker fills an independent vector, so the
  // merge order below (registry order, then a full sort) is identical at
  // any thread count.
  const auto per_rule = common::parallel_map(
      threads, registry.size(), [&](std::size_t i) {
        std::vector<Finding> out;
        if (!enabled[i]) return out;
        registry.rule(i).run(eval_ctx, out);
        for (Finding& f : out) {
          f.rule = registry.rule(i).info().id;
          f.severity = severity[i];
        }
        return out;
      });

  LintReport report;
  for (const auto& v : per_rule)
    report.findings.insert(report.findings.end(), v.begin(), v.end());

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.rule, a.anchor, a.anchor_name,
                                     a.loc.line, a.loc.column, a.message) <
                            std::tie(b.rule, b.anchor, b.anchor_name,
                                     b.loc.line, b.loc.column, b.message);
                   });

  // Deduplicate same-(rule, net) findings: the structural scan and the
  // lenient reader's repair pass can each report the same defect (e.g.
  // GL-S001 on one net, once by id and once by source location). The
  // sort above groups duplicates and puts located copies (line > 0)
  // last, so keeping the last located copy — or the group head when none
  // carries a location — is stable and thread-count-invariant.
  // Instance-anchored rules legitimately fire once per pin and are left
  // alone.
  if (!report.findings.empty()) {
    std::vector<Finding> unique;
    unique.reserve(report.findings.size());
    std::size_t i = 0;
    while (i < report.findings.size()) {
      std::size_t j = i;
      if (report.findings[i].anchor == AnchorKind::kNet) {
        while (j + 1 < report.findings.size() &&
               report.findings[j + 1].anchor == AnchorKind::kNet &&
               report.findings[j + 1].rule == report.findings[i].rule &&
               report.findings[j + 1].anchor_name ==
                   report.findings[i].anchor_name) {
          ++j;
        }
      }
      std::size_t pick = i;
      for (std::size_t k = i; k <= j; ++k) {
        if (report.findings[k].loc.line > 0) pick = k;
      }
      unique.push_back(std::move(report.findings[pick]));
      i = j + 1;
    }
    report.findings = std::move(unique);
  }

  for (Finding& f : report.findings) {
    for (const Waiver& w : config.waivers) {
      if (w.rule != f.rule || w.kind != f.anchor) continue;
      if (!glob_match(w.pattern, f.anchor_name)) continue;
      f.waived = true;
      f.waiver_justification = w.justify;
      break;
    }
    if (f.waived) {
      ++report.summary.waived;
      continue;
    }
    switch (f.severity) {
      case common::Severity::kNote: ++report.summary.notes; break;
      case common::Severity::kWarning: ++report.summary.warnings; break;
      default: ++report.summary.errors; break;
    }
  }
  return report;
}

}  // namespace gap::lint
