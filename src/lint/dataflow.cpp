#include "lint/dataflow.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "netlist/checks.hpp"

namespace gap::lint {

namespace {

using library::Func;

constexpr ConstVal kX = ConstVal::kVarying;

bool known(ConstVal v) { return v != kX; }

ConstVal cv_of(bool b) { return b ? ConstVal::kOne : ConstVal::kZero; }

ConstVal cv_not(ConstVal v) {
  if (!known(v)) return kX;
  return cv_of(v == ConstVal::kZero);
}

ConstVal cv_and(ConstVal a, ConstVal b) {
  if (a == ConstVal::kZero || b == ConstVal::kZero) return ConstVal::kZero;
  if (a == ConstVal::kOne && b == ConstVal::kOne) return ConstVal::kOne;
  return kX;
}

ConstVal cv_or(ConstVal a, ConstVal b) {
  if (a == ConstVal::kOne || b == ConstVal::kOne) return ConstVal::kOne;
  if (a == ConstVal::kZero && b == ConstVal::kZero) return ConstVal::kZero;
  return kX;
}

ConstVal cv_xor(ConstVal a, ConstVal b) {
  if (!known(a) || !known(b)) return kX;
  return cv_of(a != b);
}

/// Three-valued transfer function of one cell over its input constants.
/// Controlling values fold through unknowns (0 kills an AND even if the
/// other leg is unknown); kDff/kLatch never reach here (seeded).
ConstVal fold(Func f, const ConstVal* v, std::size_t n) {
  const auto and_all = [&] {
    ConstVal r = ConstVal::kOne;
    for (std::size_t i = 0; i < n; ++i) r = cv_and(r, v[i]);
    return r;
  };
  const auto or_all = [&] {
    ConstVal r = ConstVal::kZero;
    for (std::size_t i = 0; i < n; ++i) r = cv_or(r, v[i]);
    return r;
  };
  switch (f) {
    case Func::kInv: return cv_not(v[0]);
    case Func::kBuf: return v[0];
    case Func::kNand2:
    case Func::kNand3:
    case Func::kNand4: return cv_not(and_all());
    case Func::kNor2:
    case Func::kNor3: return cv_not(or_all());
    case Func::kAnd2:
    case Func::kAnd3: return and_all();
    case Func::kOr2:
    case Func::kOr3: return or_all();
    case Func::kXor2: return cv_xor(v[0], v[1]);
    case Func::kXnor2: return cv_not(cv_xor(v[0], v[1]));
    case Func::kAoi21: return cv_not(cv_or(cv_and(v[0], v[1]), v[2]));
    case Func::kOai21: return cv_not(cv_and(cv_or(v[0], v[1]), v[2]));
    case Func::kMux2: {
      const ConstVal s = v[2];
      if (s == ConstVal::kZero) return v[0];
      if (s == ConstVal::kOne) return v[1];
      if (known(v[0]) && v[0] == v[1]) return v[0];
      return kX;
    }
    case Func::kMaj3: {
      int zeros = 0, ones = 0;
      for (std::size_t i = 0; i < 3; ++i) {
        if (v[i] == ConstVal::kZero) ++zeros;
        if (v[i] == ConstVal::kOne) ++ones;
      }
      if (zeros >= 2) return ConstVal::kZero;
      if (ones >= 2) return ConstVal::kOne;
      return kX;
    }
    case Func::kDff:
    case Func::kLatch: return kX;
  }
  return kX;
}

}  // namespace

void DataflowEngine::seed_ports(const netlist::Netlist& nl) {
  for (PortId pid : nl.all_ports()) {
    const netlist::Port& p = nl.port(pid);
    if (!p.is_input || !p.net.valid()) continue;
    NetState& s = states_[p.net.index()];
    if (p.tie == 0 || p.tie == 1) {
      s = NetState{p.tie == 1 ? ConstVal::kOne : ConstVal::kZero, 0, 0, 0};
      continue;
    }
    s.cval = ConstVal::kVarying;
    s.taint = 0;  // external data is assumed defined at time zero
    if (p.is_reset) {
      s.doms = 0;
      s.rsts = p.domain.empty() ? kUnknownDomainBit
                                : table_.mask_of_name(p.domain);
    } else {
      s.doms = p.domain.empty()
                   ? (table_.declared() ? kUnknownDomainBit : 0u)
                   : table_.mask_of_name(p.domain);
      s.rsts = 0;
    }
  }
}

void DataflowEngine::eval_instance(const netlist::Netlist& nl, InstanceId id) {
  NetState& o = states_[graph_.output(id).index()];
  if (graph_.is_sequential(id)) {
    // Register outputs are pure seeds: synchronous to the instance's own
    // clock phase, defined iff the register has a reset. Independence
    // from the inputs is what makes one level-ordered sweep a fixpoint.
    const netlist::Instance& inst = nl.instance(id);
    o.cval = ConstVal::kVarying;
    o.taint = inst.has_reset ? 0 : 1;
    o.doms = table_.mask_of_phase(inst.clock_phase);
    o.rsts = 0;
    return;
  }
  const std::span<const NetId> ins = graph_.inputs(id);
  ConstVal v[4] = {kX, kX, kX, kX};
  const std::size_t n = std::min<std::size_t>(ins.size(), 4);
  for (std::size_t i = 0; i < n; ++i) v[i] = states_[ins[i].index()].cval;
  const Func f = nl.cell_of(id).func;
  const ConstVal cv = fold(f, v, n);
  if (known(cv)) {
    // A provably constant net carries no data: it belongs to no clock
    // domain, no reset network, and can never be undefined.
    o = NetState{cv, 0, 0, 0};
    return;
  }
  o.cval = ConstVal::kVarying;
  if (f == Func::kMux2 && n == 3 && known(v[2])) {
    // Constant select: only the selected leg (and the select itself,
    // whose sets are empty anyway) flows to the output.
    const NetState& pick =
        states_[ins[v[2] == ConstVal::kOne ? 1 : 0].index()];
    const NetState& sel = states_[ins[2].index()];
    o.taint = static_cast<std::uint8_t>(pick.taint | sel.taint);
    o.doms = pick.doms | sel.doms;
    o.rsts = pick.rsts | sel.rsts;
    return;
  }
  std::uint8_t taint = 0;
  std::uint32_t doms = 0, rsts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NetState& s = states_[ins[i].index()];
    taint |= s.taint;
    doms |= s.doms;
    rsts |= s.rsts;
  }
  o.taint = taint;
  o.doms = doms;
  o.rsts = rsts;
}

void DataflowEngine::forward_sweep(const netlist::Netlist& nl, int threads) {
  std::optional<common::ThreadPool> pool;
  if (threads != 1) pool.emplace(threads);
  const int levels = graph_.num_levels();
  for (int l = 0; l < levels; ++l) {
    const std::span<const InstanceId> w = graph_.wave(l);
    // Every instance in a wave writes its own single-driver output net
    // and reads nets finalized at lower levels: disjoint writes, so the
    // parallel relaxation is bit-identical to the serial loop.
    if (pool) {
      pool->parallel_for(w.size(),
                         [&](std::size_t i) { eval_instance(nl, w[i]); });
    } else {
      for (std::size_t i = 0; i < w.size(); ++i) eval_instance(nl, w[i]);
    }
  }
}

void DataflowEngine::reverse_passes(const netlist::Netlist& nl) {
  observed_.assign(graph_.num_nets(), 0);
  reaches_po_.assign(graph_.num_nets(), 0);

  // Structural PO reachability (the GL-S006 notion): reverse BFS from
  // primary-output nets through every driver, sequential included.
  std::vector<NetId> stack;
  for (PortId pid : nl.all_ports()) {
    if (graph_.port_is_input(pid)) continue;
    const NetId n = graph_.port_net(pid);
    if (!n.valid() || reaches_po_[n.index()]) continue;
    reaches_po_[n.index()] = 1;
    stack.push_back(n);
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const netlist::NetDriver& d = graph_.driver(n);
    if (d.kind != netlist::NetDriver::Kind::kInstance) continue;
    for (const NetId m : graph_.inputs(d.inst)) {
      if (!m.valid() || reaches_po_[m.index()]) continue;
      reaches_po_[m.index()] = 1;
      stack.push_back(m);
    }
  }

  // Observability: a net is observed when its *value* can influence a
  // primary output or captured register state. Seeds first — output
  // ports and every register input (capture is observation) — then one
  // reverse-topological walk over combinational instances. Register
  // inputs are pre-seeded rather than walked because registers sit at
  // level 0: in reverse order they would come *after* the combinational
  // logic that feeds them.
  for (PortId pid : nl.all_ports()) {
    if (graph_.port_is_input(pid)) continue;
    const NetId n = graph_.port_net(pid);
    if (n.valid()) observed_[n.index()] = 1;
  }
  for (InstanceId id : nl.all_instances()) {
    if (!graph_.is_sequential(id)) continue;
    for (const NetId m : graph_.inputs(id)) {
      if (m.valid()) observed_[m.index()] = 1;
    }
  }
  const std::vector<InstanceId>& order = graph_.order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const InstanceId id = *it;
    if (graph_.is_sequential(id)) continue;
    const NetId out = graph_.output(id);
    if (!observed_[out.index()]) continue;
    const NetState& o = states_[out.index()];
    // A constant output transmits nothing: its inputs stay unobserved
    // through this gate.
    if (o.cval != ConstVal::kVarying) continue;
    const std::span<const NetId> ins = graph_.inputs(id);
    if (nl.cell_of(id).func == Func::kMux2 && ins.size() == 3 &&
        known(states_[ins[2].index()].cval)) {
      // Constant select: the unselected leg is dead through this mux.
      const bool sel_one = states_[ins[2].index()].cval == ConstVal::kOne;
      observed_[ins[sel_one ? 1 : 0].index()] = 1;
      observed_[ins[2].index()] = 1;
      continue;
    }
    for (const NetId m : ins) observed_[m.index()] = 1;
  }
}

common::Status DataflowEngine::analyze(const netlist::Netlist& nl,
                                       const std::vector<DomainDecl>& decls,
                                       int threads) {
  static common::Counter& sweeps =
      common::metrics().counter("lint.dataflow.full_sweeps");
  static common::Counter& evals =
      common::metrics().counter("lint.dataflow.evals");

  valid_ = false;
  if (&decls != &decls_) decls_ = decls;
  if (nl.num_instances() > 0 && netlist::topo_order(nl).empty()) {
    return common::Status::error(
        common::ErrorCode::kStructural,
        "combinational cycle: dataflow analysis skipped (see GL-S004)");
  }
  try {
    ScopedContractCapture capture;
    graph_.build(nl);
  } catch (const std::exception& e) {
    return common::Status::error(
        common::ErrorCode::kContract,
        std::string("netlist rejected by dataflow graph build: ") + e.what());
  }
  table_ = DomainTable::build(nl, decls_);
  states_.assign(graph_.num_nets(), NetState{});
  seed_ports(nl);
  forward_sweep(nl, threads);
  reverse_passes(nl);
  valid_ = true;
  synced_version_ = nl.version();
  stats_.full_sweeps += 1;
  stats_.evals += graph_.num_instances();
  sweeps.add(1);
  evals.add(graph_.num_instances());
  return {};
}

common::Status DataflowEngine::refresh(const netlist::Netlist& nl,
                                       const std::vector<DomainDecl>& decls,
                                       int threads) {
  static common::Counter& reuses =
      common::metrics().counter("lint.dataflow.reuses");
  if (valid_ && synced_version_ == nl.version() && decls == decls_) {
    stats_.reuses += 1;
    reuses.add(1);
    return {};
  }
  return analyze(nl, decls, threads);
}

common::Status DataflowEngine::recompute_cones(
    const netlist::Netlist& nl, const std::vector<InstanceId>& roots) {
  static common::Counter& cones =
      common::metrics().counter("lint.dataflow.cone_passes");
  static common::Counter& evals =
      common::metrics().counter("lint.dataflow.evals");

  // Collect the combinational forward cone: registers are lattice seeds,
  // so traversal stops at every sequential sink (a root register is still
  // re-evaluated — its own seed may have changed).
  std::vector<std::uint8_t> in_cone(graph_.num_instances(), 0);
  std::vector<InstanceId> work;
  std::vector<InstanceId> members;
  for (const InstanceId r : roots) {
    if (in_cone[r.index()]) continue;
    in_cone[r.index()] = 1;
    work.push_back(r);
  }
  while (!work.empty()) {
    const InstanceId id = work.back();
    work.pop_back();
    members.push_back(id);
    for (const netlist::NetSink& s : graph_.sinks(graph_.output(id))) {
      if (s.kind != netlist::NetSink::Kind::kInstancePin) continue;
      if (graph_.is_sequential(s.inst)) continue;
      if (in_cone[s.inst.index()]) continue;
      in_cone[s.inst.index()] = 1;
      work.push_back(s.inst);
    }
  }
  // Level-ordered serial evaluation: each member reads only nets
  // finalized at lower levels, so one pass is exact. Deterministic by
  // construction — the schedule is the same at any thread count.
  const std::vector<int>& level = graph_.levels();
  std::sort(members.begin(), members.end(),
            [&](InstanceId a, InstanceId b) {
              const int la = level[a.index()], lb = level[b.index()];
              if (la != lb) return la < lb;
              return a < b;
            });
  for (const InstanceId id : members) eval_instance(nl, id);
  reverse_passes(nl);
  synced_version_ = nl.version();
  stats_.cone_passes += 1;
  stats_.evals += members.size();
  cones.add(1);
  evals.add(members.size());
  return {};
}

common::Status DataflowEngine::update_rewire(const netlist::Netlist& nl,
                                             InstanceId inst, int threads) {
  if (!valid_ || graph_.num_instances() != nl.num_instances() ||
      graph_.num_nets() != nl.num_nets() ||
      graph_.num_ports() != nl.num_ports()) {
    return analyze(nl, decls_, threads);
  }
  if (nl.num_instances() > 0 && netlist::topo_order(nl).empty()) {
    valid_ = false;
    return common::Status::error(
        common::ErrorCode::kStructural,
        "combinational cycle after rewire: dataflow analysis skipped");
  }
  try {
    ScopedContractCapture capture;
    graph_.rebuild_structure(nl);
  } catch (const std::exception& e) {
    valid_ = false;
    return common::Status::error(
        common::ErrorCode::kContract,
        std::string("rewired netlist rejected by schedule rebuild: ") +
            e.what());
  }
  seed_ports(nl);
  return recompute_cones(nl, {inst});
}

common::Status DataflowEngine::update_clock(const netlist::Netlist& nl,
                                            InstanceId inst, int threads) {
  if (!valid_ || graph_.num_instances() != nl.num_instances() ||
      graph_.num_nets() != nl.num_nets() ||
      graph_.num_ports() != nl.num_ports()) {
    return analyze(nl, decls_, threads);
  }
  // A phase edit can change the domain universe itself (a brand-new
  // phase, or the design flipping between single- and multi-clock).
  // Rebuilding the table is O(ports + instances) — cheap next to a
  // sweep — and any difference forces the full path.
  const DomainTable fresh = DomainTable::build(nl, decls_);
  if (!(fresh == table_)) return analyze(nl, decls_, threads);
  if (!graph_.is_sequential(inst)) {
    resync_value(nl);
    return {};
  }
  return recompute_cones(nl, {inst});
}

}  // namespace gap::lint
