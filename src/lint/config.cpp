/// \file config.cpp
/// Parser for the gaplint.toml-subset configuration: `[rules]` severity
/// overrides, `[constraints]` numbers, `[[waive]]` blocks, and
/// `[[domain]]` clock-domain declarations. This is an
/// untrusted-input path: every malformed line becomes a located Status,
/// never an abort.

#include <cctype>
#include <cstdlib>
#include <optional>
#include <utility>

#include "lint/lint.hpp"

namespace gap::lint {

namespace {

using common::ErrorCode;
using common::Result;
using common::SourceLoc;
using common::Status;

constexpr const char* kWhere = "gaplint-config";

Status err(ErrorCode code, std::string message, int line, int column) {
  return Status::error(code, std::move(message), SourceLoc{line, column},
                       kWhere);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Strip a trailing comment that is outside any quoted string.
std::string strip_comment(const std::string& s) {
  bool quoted = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') quoted = !quoted;
    if (s[i] == '#' && !quoted) return s.substr(0, i);
  }
  return s;
}

std::optional<SeverityOverride> parse_level(const std::string& v) {
  if (v == "off") return SeverityOverride::kOff;
  if (v == "note") return SeverityOverride::kNote;
  if (v == "warn" || v == "warning") return SeverityOverride::kWarning;
  if (v == "error") return SeverityOverride::kError;
  return std::nullopt;
}

/// A pending [[waive]] block being accumulated.
struct WaiverDraft {
  Waiver w;
  bool has_rule = false;
  bool has_anchor = false;
  bool has_justify = false;
  int line = 0;  ///< line of the opening [[waive]]
};

/// A pending [[domain]] block being accumulated.
struct DomainDraft {
  DomainDecl d;
  bool has_name = false;
  bool has_phase = false;
  int line = 0;  ///< line of the opening [[domain]]
};

class Parser {
 public:
  Parser(const std::string& text, const RuleRegistry& registry)
      : text_(text), registry_(registry) {}

  Result<LintConfig> run() {
    std::size_t pos = 0;
    int line_no = 0;
    while (pos <= text_.size()) {
      const std::size_t eol = text_.find('\n', pos);
      const std::string raw =
          text_.substr(pos, eol == std::string::npos ? eol : eol - pos);
      ++line_no;
      Status s = parse_line(trim(strip_comment(raw)), line_no);
      if (!s.ok()) return s;
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
    Status s = finish_waiver(line_no);
    if (!s.ok()) return s;
    s = finish_domain(line_no);
    if (!s.ok()) return s;
    return std::move(config_);
  }

 private:
  enum class Section : std::uint8_t {
    kNone,
    kRules,
    kConstraints,
    kWaive,
    kDomain,
  };

  Status parse_line(const std::string& line, int line_no) {
    if (line.empty()) return Status{};
    if (line.front() == '[') return enter_section(line, line_no);
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return err(ErrorCode::kParse, "expected 'key = value': '" + line + "'",
                 line_no, 1);
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return err(ErrorCode::kParse, "missing key before '='", line_no, 1);
    }
    if (value.empty()) {
      return err(ErrorCode::kMissingValue, "missing value for '" + key + "'",
                 line_no, static_cast<int>(eq) + 2);
    }
    const int vcol = static_cast<int>(line.find(value, eq + 1)) + 1;
    switch (section_) {
      case Section::kRules: return rule_line(key, value, line_no, vcol);
      case Section::kConstraints:
        return constraint_line(key, value, line_no, vcol);
      case Section::kWaive: return waive_line(key, value, line_no, vcol);
      case Section::kDomain: return domain_line(key, value, line_no, vcol);
      case Section::kNone:
        return err(ErrorCode::kParse,
                   "'" + key + "' appears before any section header",
                   line_no, 1);
    }
    return Status{};
  }

  Status enter_section(const std::string& line, int line_no) {
    Status s = finish_waiver(line_no);
    if (!s.ok()) return s;
    s = finish_domain(line_no);
    if (!s.ok()) return s;
    if (line == "[rules]") {
      section_ = Section::kRules;
    } else if (line == "[constraints]") {
      section_ = Section::kConstraints;
    } else if (line == "[[waive]]") {
      section_ = Section::kWaive;
      draft_ = WaiverDraft{};
      draft_->line = line_no;
    } else if (line == "[[domain]]") {
      section_ = Section::kDomain;
      domain_draft_ = DomainDraft{};
      domain_draft_->line = line_no;
    } else {
      return err(ErrorCode::kUnknownName, "unknown section '" + line + "'",
                 line_no, 1);
    }
    return Status{};
  }

  Status rule_line(const std::string& key, const std::string& value,
                   int line_no, int vcol) {
    if (registry_.find(key) == nullptr) {
      return err(ErrorCode::kUnknownName, "unknown rule id '" + key + "'",
                 line_no, 1);
    }
    Result<std::string> text = string_value(value, line_no, vcol);
    if (!text.ok()) return text.status();
    const auto level = parse_level(text.value());
    if (!level.has_value()) {
      return err(ErrorCode::kInvalidValue,
                 "invalid level '" + text.value() +
                     "' (want off, note, warn or error)",
                 line_no, vcol);
    }
    config_.rule_levels.emplace_back(key, *level);
    return Status{};
  }

  Status constraint_line(const std::string& key, const std::string& value,
                         int line_no, int vcol) {
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return err(ErrorCode::kParse, "expected a number, got '" + value + "'",
                 line_no, vcol);
    }
    // Out-of-range values (e.g. a negative period) are accepted here and
    // reported by the constraint rules, so they show up in the lint
    // report rather than as a config error.
    if (key == "period_tau") {
      config_.constraints.period_tau = v;
    } else if (key == "skew_fraction") {
      config_.constraints.skew_fraction = v;
    } else {
      return err(ErrorCode::kUnknownName,
                 "unknown constraint '" + key + "'", line_no, 1);
    }
    return Status{};
  }

  Status waive_line(const std::string& key, const std::string& value,
                    int line_no, int vcol) {
    Result<std::string> text = string_value(value, line_no, vcol);
    if (!text.ok()) return text.status();
    WaiverDraft& d = *draft_;
    if (key == "rule") {
      if (registry_.find(text.value()) == nullptr) {
        return err(ErrorCode::kUnknownName,
                   "unknown rule id '" + text.value() + "'", line_no, vcol);
      }
      d.w.rule = text.value();
      d.has_rule = true;
    } else if (key == "net" || key == "instance" || key == "port") {
      if (d.has_anchor) {
        return err(ErrorCode::kDuplicate,
                   "waiver already has an anchor; only one of net, "
                   "instance or port is allowed",
                   line_no, 1);
      }
      d.w.kind = key == "net"        ? AnchorKind::kNet
                 : key == "instance" ? AnchorKind::kInstance
                                     : AnchorKind::kPort;
      d.w.pattern = text.value();
      d.has_anchor = true;
    } else if (key == "justify") {
      if (trim(text.value()).empty()) {
        return err(ErrorCode::kInvalidValue,
                   "waiver justification must not be empty", line_no, vcol);
      }
      d.w.justify = text.value();
      d.has_justify = true;
    } else {
      return err(ErrorCode::kUnknownName, "unknown waiver key '" + key + "'",
                 line_no, 1);
    }
    return Status{};
  }

  Status domain_line(const std::string& key, const std::string& value,
                     int line_no, int vcol) {
    DomainDraft& d = *domain_draft_;
    if (key == "name") {
      Result<std::string> text = string_value(value, line_no, vcol);
      if (!text.ok()) return text.status();
      if (trim(text.value()).empty()) {
        return err(ErrorCode::kInvalidValue,
                   "domain name must not be empty", line_no, vcol);
      }
      for (const DomainDecl& prior : config_.domains) {
        if (prior.name == text.value()) {
          return err(ErrorCode::kDuplicate,
                     "domain '" + text.value() + "' declared twice",
                     line_no, vcol);
        }
      }
      d.d.name = text.value();
      d.has_name = true;
    } else if (key == "phase") {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return err(ErrorCode::kParse,
                   "expected an integer phase, got '" + value + "'",
                   line_no, vcol);
      }
      if (v < 0 || v > 255) {
        return err(ErrorCode::kInvalidValue,
                   "clock phase " + value + " out of range [0, 255]",
                   line_no, vcol);
      }
      d.d.phase = static_cast<int>(v);
      d.has_phase = true;
    } else {
      return err(ErrorCode::kUnknownName, "unknown domain key '" + key + "'",
                 line_no, 1);
    }
    return Status{};
  }

  /// Close out a pending [[domain]] block, enforcing the required keys.
  Status finish_domain(int line_no) {
    if (!domain_draft_.has_value()) return Status{};
    const DomainDraft d = *domain_draft_;
    domain_draft_.reset();
    if (!d.has_name) {
      return err(ErrorCode::kMissingValue,
                 "domain declaration is missing its 'name'", d.line, 1);
    }
    if (!d.has_phase) {
      return err(ErrorCode::kMissingValue,
                 "domain declaration is missing its 'phase'", d.line, 1);
    }
    for (const DomainDecl& prior : config_.domains) {
      if (prior.phase == d.d.phase) {
        return err(ErrorCode::kDuplicate,
                   "clock phase " + std::to_string(d.d.phase) +
                       " already bound to domain '" + prior.name + "'",
                   d.line, 1);
      }
    }
    (void)line_no;
    config_.domains.push_back(d.d);
    return Status{};
  }

  /// Close out a pending [[waive]] block, enforcing the required keys.
  Status finish_waiver(int line_no) {
    if (!draft_.has_value()) return Status{};
    const WaiverDraft d = *draft_;
    draft_.reset();
    if (!d.has_rule) {
      return err(ErrorCode::kMissingValue,
                 "waiver is missing its 'rule'", d.line, 1);
    }
    if (!d.has_anchor) {
      return err(ErrorCode::kMissingValue,
                 "waiver needs one of net, instance or port", d.line, 1);
    }
    if (!d.has_justify) {
      return err(ErrorCode::kMissingValue,
                 "waiver is missing its mandatory 'justify'", d.line, 1);
    }
    (void)line_no;
    config_.waivers.push_back(d.w);
    return Status{};
  }

  Result<std::string> string_value(const std::string& value, int line_no,
                                   int vcol) {
    if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
      return err(ErrorCode::kParse,
                 "expected a quoted string, got '" + value + "'", line_no,
                 vcol);
    }
    return value.substr(1, value.size() - 2);
  }

  const std::string& text_;
  const RuleRegistry& registry_;
  LintConfig config_;
  Section section_ = Section::kNone;
  std::optional<WaiverDraft> draft_;
  std::optional<DomainDraft> domain_draft_;
};

}  // namespace

Result<LintConfig> parse_config(const std::string& text,
                                const RuleRegistry& registry) {
  return Parser(text, registry).run();
}

}  // namespace gap::lint
