#pragma once
/// \file report.hpp
/// Renderers for a LintReport: human-readable text, the stable
/// "gap-lint-report-v1" JSON schema, and SARIF 2.1.0 for code-scanning
/// UIs. All three are pure functions of (registry, report, artifact) —
/// no timestamps, hostnames or thread counts — so reruns are
/// byte-identical and CI can diff them directly.

#include <string>

#include "lint/lint.hpp"

namespace gap::lint {

/// One line per finding plus a trailing summary line. `artifact` names
/// the analyzed input (shown with source locations); may be empty for
/// in-memory netlists.
[[nodiscard]] std::string format_text(const RuleRegistry& registry,
                                      const LintReport& report,
                                      const std::string& artifact);

/// Stable JSON ("gap-lint-report-v1"): findings in report order with
/// rule / category / severity / anchor / message / location / waiver,
/// then the summary counts.
[[nodiscard]] std::string write_json(const RuleRegistry& registry,
                                     const LintReport& report,
                                     const std::string& artifact);

/// SARIF 2.1.0: the registry becomes the tool.driver.rules catalog
/// (defaultConfiguration.level from each rule's default severity),
/// findings become results with logical locations, and waived findings
/// carry a `suppressions` entry with the waiver's justification.
[[nodiscard]] std::string write_sarif(const RuleRegistry& registry,
                                      const LintReport& report,
                                      const std::string& artifact);

}  // namespace gap::lint
