#include "lint/report.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/json.hpp"

namespace gap::lint {

namespace {

namespace json = common::json;

std::string quoted(const std::string& s) {
  return "\"" + json::escape(s) + "\"";
}

/// SARIF `level` for a severity (kFatal collapses to "error"; gap::lint
/// itself never emits it, but overrides shouldn't be able to break SARIF).
const char* sarif_level(common::Severity s) {
  switch (s) {
    case common::Severity::kNote: return "note";
    case common::Severity::kWarning: return "warning";
    default: return "error";
  }
}

const RuleInfo& info_of(const RuleRegistry& registry,
                        const std::string& id) {
  const Rule* r = registry.find(id);
  GAP_EXPECTS(r != nullptr);  // findings always come from registry rules
  return r->info();
}

std::size_t index_of(const RuleRegistry& registry, const std::string& id) {
  for (std::size_t i = 0; i < registry.size(); ++i)
    if (registry.rule(i).info().id == id) return i;
  GAP_EXPECTS(false);
  return 0;
}

}  // namespace

std::string format_text(const RuleRegistry& registry,
                        const LintReport& report,
                        const std::string& artifact) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    if (f.waived) {
      out << "waived";
    } else {
      out << common::to_string(f.severity);
    }
    out << "[" << f.rule << "] " << to_string(f.anchor) << " '"
        << f.anchor_name << "': " << f.message;
    if (f.loc.valid()) {
      out << " (" << (artifact.empty() ? "input" : artifact) << ":"
          << f.loc.line << ":" << f.loc.column << ")";
    }
    if (f.waived) out << " [waiver: " << f.waiver_justification << "]";
    out << "\n";
    (void)registry;
  }
  const LintSummary& s = report.summary;
  out << "gaplint: " << s.errors << " error(s), " << s.warnings
      << " warning(s), " << s.notes << " note(s), " << s.waived
      << " waived\n";
  return out.str();
}

std::string write_json(const RuleRegistry& registry, const LintReport& report,
                       const std::string& artifact) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"gap-lint-report-v1\",\n";
  out << "  \"artifact\": " << quoted(artifact) << ",\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n";
    out << "      \"rule\": " << quoted(f.rule) << ",\n";
    out << "      \"category\": "
        << quoted(to_string(info_of(registry, f.rule).category)) << ",\n";
    out << "      \"severity\": " << quoted(common::to_string(f.severity))
        << ",\n";
    out << "      \"anchor\": { \"kind\": " << quoted(to_string(f.anchor))
        << ", \"name\": " << quoted(f.anchor_name) << " },\n";
    out << "      \"message\": " << quoted(f.message) << ",\n";
    if (f.loc.valid()) {
      out << "      \"line\": " << f.loc.line << ",\n";
      out << "      \"column\": " << f.loc.column << ",\n";
    }
    out << "      \"waived\": " << (f.waived ? "true" : "false");
    if (f.waived) {
      out << ",\n      \"justification\": " << quoted(f.waiver_justification);
    }
    out << "\n    }";
  }
  out << (report.findings.empty() ? "],\n" : "\n  ],\n");
  const LintSummary& s = report.summary;
  out << "  \"summary\": { \"errors\": " << s.errors
      << ", \"warnings\": " << s.warnings << ", \"notes\": " << s.notes
      << ", \"waived\": " << s.waived << " }\n";
  out << "}\n";
  return out.str();
}

std::string write_sarif(const RuleRegistry& registry,
                        const LintReport& report,
                        const std::string& artifact) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out << "  \"version\": \"2.1.0\",\n";
  out << "  \"runs\": [\n    {\n";
  out << "      \"tool\": {\n        \"driver\": {\n";
  out << "          \"name\": \"gaplint\",\n";
  out << "          \"rules\": [";
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const RuleInfo& info = registry.rule(i).info();
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\n";
    out << "              \"id\": " << quoted(info.id) << ",\n";
    out << "              \"shortDescription\": { \"text\": "
        << quoted(info.title) << " },\n";
    out << "              \"defaultConfiguration\": { \"level\": \""
        << sarif_level(info.default_severity) << "\" },\n";
    out << "              \"properties\": { \"category\": "
        << quoted(to_string(info.category)) << " }\n";
    out << "            }";
  }
  out << (registry.empty() ? "]\n" : "\n          ]\n");
  out << "        }\n      },\n";
  out << "      \"results\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\n";
    out << "          \"ruleId\": " << quoted(f.rule) << ",\n";
    out << "          \"ruleIndex\": " << index_of(registry, f.rule)
        << ",\n";
    out << "          \"level\": \"" << sarif_level(f.severity) << "\",\n";
    out << "          \"message\": { \"text\": " << quoted(f.message)
        << " },\n";
    out << "          \"locations\": [\n            {\n";
    if (f.loc.valid() && !artifact.empty()) {
      out << "              \"physicalLocation\": {\n";
      out << "                \"artifactLocation\": { \"uri\": "
          << quoted(artifact) << " },\n";
      out << "                \"region\": { \"startLine\": " << f.loc.line
          << ", \"startColumn\": " << f.loc.column << " }\n";
      out << "              },\n";
    }
    out << "              \"logicalLocations\": [\n";
    out << "                { \"name\": " << quoted(f.anchor_name)
        << ", \"kind\": " << quoted(to_string(f.anchor)) << " }\n";
    out << "              ]\n";
    out << "            }\n          ]";
    if (f.waived) {
      out << ",\n          \"suppressions\": [\n";
      out << "            { \"kind\": \"external\", \"justification\": "
          << quoted(f.waiver_justification) << " }\n";
      out << "          ]";
    }
    out << "\n        }";
  }
  out << (report.findings.empty() ? "]\n" : "\n      ]\n");
  out << "    }\n  ]\n";
  out << "}\n";
  return out.str();
}

}  // namespace gap::lint
