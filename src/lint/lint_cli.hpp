#pragma once
/// \file lint_cli.hpp
/// Implementation of the `gaplint` command-line tool: run the gap::lint
/// rule catalog over a structural Verilog module and render the findings
/// as text, JSON, or SARIF. Lives in the library (not tools/gaplint.cpp)
/// so tests can drive it in-process with captured streams.
///
///   gaplint FILE [--lib FILE] [--config FILE] [--format text|json|sarif]
///           [--out FILE] [--threads N] [--period-tau F]
///           [--skew-fraction F]
///   gaplint --list-rules
///
/// Exit codes:
///   0  clean, or only warnings / notes / waived findings
///   1  at least one unwaived error-severity finding
///   2  malformed command line (unknown flag, missing or bad value)
///   3  input did not parse (Verilog, Liberty, or config)
///   5  file unreadable or output unwritable

#include <ostream>

namespace gap::lint {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFindings = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitParse = 3;
inline constexpr int kExitIo = 5;

/// Run the tool. `argv` excludes the program name (pass argc-1/argv+1
/// from main). Reports go to `out`, errors to `err`.
int run_gaplint(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err);

}  // namespace gap::lint
