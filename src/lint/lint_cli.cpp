#include "lint/lint_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "library/builders.hpp"
#include "library/liberty.hpp"
#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "tech/technology.hpp"

namespace gap::lint {
namespace {

constexpr const char* kUsage =
    "usage: gaplint FILE [options]\n"
    "\n"
    "Run the gap::lint rule catalog over a structural Verilog module.\n"
    "\n"
    "options:\n"
    "  --lib FILE         Liberty cell library (default: built-in rich "
    "ASIC library)\n"
    "  --config FILE      gaplint.toml config: severities, waivers, "
    "constraints\n"
    "  --format KIND      text (default), json, or sarif\n"
    "  --out FILE         write the report to FILE instead of stdout\n"
    "  --threads N        worker threads for rule evaluation (0 = all "
    "cores);\n"
    "                     the report is identical at any thread count\n"
    "  --period-tau F     clock period constraint in tau (overrides "
    "config)\n"
    "  --skew-fraction F  clock skew as a fraction of the period "
    "(overrides config)\n"
    "  --list-rules       print the rule catalog and exit (honors\n"
    "                     --format text or json)\n"
    "  --help             this text\n"
    "\n"
    "exit codes: 0 clean or warnings only, 1 error findings, 2 usage,\n"
    "3 parse failure, 5 I/O failure\n";

enum class Format : std::uint8_t { kText, kJson, kSarif };

struct Options {
  std::string file;
  std::string lib_file;
  std::string config_file;
  std::string out_file;
  Format format = Format::kText;
  int threads = 1;
  std::optional<double> period_tau;
  std::optional<double> skew_fraction;
  bool list_rules = false;
  bool help = false;
};

/// Parse the command line; returns an exit code, or -1 to continue.
int parse_args(int argc, const char* const* argv, Options& opt,
               std::ostream& err) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "gaplint: " << flag << " needs a value\n";
        return nullptr;
      }
      return &args[++i];
    };
    auto double_value = [&](const char* flag,
                            std::optional<double>& into) -> bool {
      const std::string* v = value(flag);
      if (v == nullptr) return false;
      char* end = nullptr;
      const double parsed = std::strtod(v->c_str(), &end);
      if (end == v->c_str() || *end != '\0') {
        err << "gaplint: bad " << flag << " value '" << *v << "'\n";
        return false;
      }
      into = parsed;
      return true;
    };
    if (a == "--help") {
      opt.help = true;
    } else if (a == "--list-rules") {
      opt.list_rules = true;
    } else if (a == "--lib") {
      const std::string* v = value("--lib");
      if (v == nullptr) return kExitUsage;
      opt.lib_file = *v;
    } else if (a == "--config") {
      const std::string* v = value("--config");
      if (v == nullptr) return kExitUsage;
      opt.config_file = *v;
    } else if (a == "--out") {
      const std::string* v = value("--out");
      if (v == nullptr) return kExitUsage;
      opt.out_file = *v;
    } else if (a == "--format") {
      const std::string* v = value("--format");
      if (v == nullptr) return kExitUsage;
      if (*v == "text") {
        opt.format = Format::kText;
      } else if (*v == "json") {
        opt.format = Format::kJson;
      } else if (*v == "sarif") {
        opt.format = Format::kSarif;
      } else {
        err << "gaplint: bad --format value '" << *v
            << "' (want text, json or sarif)\n";
        return kExitUsage;
      }
    } else if (a == "--threads") {
      const std::string* v = value("--threads");
      if (v == nullptr) return kExitUsage;
      char* end = nullptr;
      const long n = std::strtol(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0' || n < 0) {
        err << "gaplint: bad --threads value '" << *v << "'\n";
        return kExitUsage;
      }
      opt.threads = static_cast<int>(n);
    } else if (a == "--period-tau") {
      if (!double_value("--period-tau", opt.period_tau)) return kExitUsage;
    } else if (a == "--skew-fraction") {
      if (!double_value("--skew-fraction", opt.skew_fraction))
        return kExitUsage;
    } else if (a.rfind("--", 0) == 0) {
      err << "gaplint: unknown flag " << a << "\n" << kUsage;
      return kExitUsage;
    } else if (opt.file.empty()) {
      opt.file = a;
    } else {
      err << "gaplint: only one input file is supported\n";
      return kExitUsage;
    }
  }
  return -1;
}

bool read_file(const std::string& path, std::string& out, std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "gaplint: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  out = text.str();
  return true;
}

void list_rules(const RuleRegistry& registry, std::ostream& out) {
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const RuleInfo& info = registry.rule(i).info();
    char line[160];
    std::snprintf(line, sizeof line, "%-9s %-11s %-8s %s", info.id.c_str(),
                  to_string(info.category),
                  common::to_string(info.default_severity),
                  info.title.c_str());
    out << line << "\n";
  }
}

/// Machine-readable catalog; the same id/category/severity triples the
/// SARIF driver.rules block carries (lint_test pins them together).
void list_rules_json(const RuleRegistry& registry, std::ostream& out) {
  out << "{\n  \"schema\": \"gap-lint-rules-v1\",\n  \"rules\": [";
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const RuleInfo& info = registry.rule(i).info();
    out << (i == 0 ? "\n" : ",\n");
    out << "    { \"id\": \"" << info.id << "\", \"category\": \""
        << to_string(info.category) << "\", \"default_severity\": \""
        << common::to_string(info.default_severity) << "\", \"title\": \""
        << info.title << "\" }";
  }
  out << (registry.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

}  // namespace

int run_gaplint(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err) {
  Options opt;
  if (const int rc = parse_args(argc, argv, opt, err); rc >= 0) return rc;
  if (opt.help || argc == 0) {
    out << kUsage;
    return argc == 0 ? kExitUsage : kExitOk;
  }

  const RuleRegistry registry = default_registry();
  if (opt.list_rules) {
    if (opt.format == Format::kSarif) {
      err << "gaplint: --list-rules supports --format text or json (the "
             "SARIF catalog is part of every sarif report)\n";
      return kExitUsage;
    }
    if (opt.format == Format::kJson) {
      list_rules_json(registry, out);
    } else {
      list_rules(registry, out);
    }
    return kExitOk;
  }
  if (opt.file.empty()) {
    err << "gaplint: no input file\n" << kUsage;
    return kExitUsage;
  }

  // Library: an explicit Liberty file, or the built-in rich ASIC library
  // (with its domino variants, so any written netlist loads).
  library::CellLibrary lib =
      library::make_rich_asic_library(tech::asic_025um());
  library::add_domino_cells(lib);
  if (!opt.lib_file.empty()) {
    std::string text;
    if (!read_file(opt.lib_file, text, err)) return kExitIo;
    common::Result<library::CellLibrary> parsed = library::read_liberty(text);
    if (!parsed.ok()) {
      err << "gaplint: " << opt.lib_file << ": "
          << parsed.status().to_string() << "\n";
      return kExitParse;
    }
    lib = std::move(parsed.value());
  }

  LintConfig config;
  if (!opt.config_file.empty()) {
    std::string text;
    if (!read_file(opt.config_file, text, err)) return kExitIo;
    common::Result<LintConfig> parsed = parse_config(text, registry);
    if (!parsed.ok()) {
      err << "gaplint: " << opt.config_file << ": "
          << parsed.status().to_string() << "\n";
      return kExitParse;
    }
    config = std::move(parsed.value());
  }
  if (opt.period_tau.has_value())
    config.constraints.period_tau = opt.period_tau;
  if (opt.skew_fraction.has_value())
    config.constraints.skew_fraction = opt.skew_fraction;

  std::string verilog;
  if (!read_file(opt.file, verilog, err)) return kExitIo;
  common::Result<netlist::LenientParse> parsed =
      netlist::read_verilog_lenient(verilog, lib);
  if (!parsed.ok()) {
    err << "gaplint: " << opt.file << ": " << parsed.status().to_string()
        << "\n";
    return kExitParse;
  }

  LintContext ctx;
  ctx.nl = &parsed.value().nl;
  ctx.limits = tech::default_electrical_limits();
  ctx.constraints = config.constraints;
  ctx.parse_violations = &parsed.value().violations;
  const LintReport report = run_lint(registry, ctx, config, opt.threads);

  std::string rendered;
  switch (opt.format) {
    case Format::kText:
      rendered = format_text(registry, report, opt.file);
      break;
    case Format::kJson:
      rendered = write_json(registry, report, opt.file);
      break;
    case Format::kSarif:
      rendered = write_sarif(registry, report, opt.file);
      break;
  }
  if (opt.out_file.empty()) {
    out << rendered;
  } else {
    std::ofstream os(opt.out_file, std::ios::binary);
    if (!os) {
      err << "gaplint: cannot write " << opt.out_file << "\n";
      return kExitIo;
    }
    os << rendered;
    if (!os.good()) {
      err << "gaplint: cannot write " << opt.out_file << "\n";
      return kExitIo;
    }
  }
  return report.has_errors() ? kExitFindings : kExitOk;
}

}  // namespace gap::lint
