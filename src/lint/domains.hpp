#pragma once
/// \file domains.hpp
/// Clock/reset-domain naming for the lint dataflow engine. A domain is a
/// clock phase with a name: declarations come from the lint config
/// (`[[domain]]` blocks mapping a name to a phase) and from netlist port
/// annotations (`// gap: domain <port> <name>`); phases used by sequential
/// instances but never declared get deterministic auto-names. Domains are
/// represented as bits of a 32-bit set so the lattice can union them in
/// one instruction; bit 31 is reserved for "unknown domain" (an
/// unannotated data input, or overflow past 31 named domains).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace gap::lint {

/// One `[[domain]]` declaration from the lint config: a named clock
/// domain bound to a clock phase index.
struct DomainDecl {
  std::string name;
  int phase = 0;

  friend bool operator==(const DomainDecl&, const DomainDecl&) = default;
};

/// Bit reserved for data whose domain cannot be named.
inline constexpr std::uint32_t kUnknownDomainBit = 0x80000000u;
/// Named domains fit in bits [0, 31).
inline constexpr int kMaxNamedDomains = 31;

/// Deterministic name/phase <-> bit table built once per analysis.
/// Construction order (and therefore bit assignment) is reproducible:
/// config declarations first, then port annotations in port-id order,
/// then undeclared phases in ascending phase order (auto-named
/// "phase<N>").
class DomainTable {
 public:
  static DomainTable build(const netlist::Netlist& nl,
                           const std::vector<DomainDecl>& decls);

  [[nodiscard]] int num_domains() const {
    return static_cast<int>(names_.size());
  }
  [[nodiscard]] const std::string& name(int bit) const { return names_[bit]; }

  /// Single-bit mask of a clock phase (kUnknownDomainBit on overflow).
  [[nodiscard]] std::uint32_t mask_of_phase(int phase) const;
  /// Single-bit mask of a declared name; kUnknownDomainBit when unnamed.
  [[nodiscard]] std::uint32_t mask_of_name(const std::string& name) const;

  /// True when the user declared any domain (config block, port
  /// annotation, or reset annotation) — gates the "unknown domain" rule.
  [[nodiscard]] bool declared() const { return declared_; }
  /// True when the design declares a reset discipline (any reset port or
  /// any `hasreset` instance annotation) — gates GL-X004.
  [[nodiscard]] bool reset_discipline() const { return reset_discipline_; }
  /// True when sequential instances use more than one clock phase.
  [[nodiscard]] bool multi_phase() const { return multi_phase_; }
  /// Domain rules run only when the user *declared* domains (config
  /// block or port annotation). Multi-phase alone does not opt in: a
  /// two-phase latch pipeline is an intentional clocking style, not a
  /// clock-domain crossing.
  [[nodiscard]] bool enabled() const { return declared_; }

  /// Human-readable rendering of a domain set: names sorted by bit,
  /// '|'-joined, '?' for the unknown bit ("a|b", "?", "a|?").
  [[nodiscard]] std::string describe(std::uint32_t mask) const;

  /// Two tables agree when every bit assignment and gating flag matches —
  /// the incremental engine's cheap "did a value edit move the domain
  /// universe" check.
  friend bool operator==(const DomainTable&, const DomainTable&) = default;

 private:
  int add(const std::string& name);  // returns bit or kMaxNamedDomains

  std::vector<std::string> names_;
  std::map<int, int> phase_bit_;
  std::map<std::string, int> name_bit_;
  bool declared_ = false;
  bool reset_discipline_ = false;
  bool multi_phase_ = false;
};

}  // namespace gap::lint
