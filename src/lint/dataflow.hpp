#pragma once
/// \file dataflow.hpp
/// Whole-netlist forward dataflow analysis over the levelized wavefront
/// schedule of sta::CompactGraph. One lattice value per net:
///
///   - a three-valued constant (0 / 1 / varying),
///   - an uninitialized-state taint bit (X-reachability),
///   - a 32-bit set of clock domains the net's data is synchronous to,
///   - a 32-bit set of reset domains whose reset logic reaches the net.
///
/// Register outputs are pure seeds — their lattice value depends only on
/// the instance's own clock phase and reset annotation, never on its
/// inputs — so a single level-ordered sweep reaches the fixpoint: every
/// combinational instance reads values finalized at strictly lower
/// levels. Each wave writes disjoint single-driver nets, so waves relax
/// in parallel over common::ThreadPool with bit-identical results at any
/// lane count (the same argument as compact_propagate).
///
/// A reverse pass computes per-net observability (does the net's value
/// influence a primary output or captured register state, after folding
/// constant mux selects?) and structural PO-reachability; the GL-D/GL-X
/// rule family (rules.cpp) reads all of it through LintContext::dataflow.
///
/// The engine is resident-service friendly: gapd caches one per session
/// and resynchronizes it against Netlist::version() per edit kind —
/// value-only edits reuse everything, an input rewire re-evaluates only
/// the forward cone of the edited instance (update_rewire). All metrics
/// ("lint.dataflow.*") are derived from the schedule, never from pool
/// behavior, so counters are thread-count-invariant.

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "lint/domains.hpp"
#include "netlist/netlist.hpp"
#include "sta/compact_graph.hpp"

namespace gap::lint {

/// Three-valued constant lattice for one net.
enum class ConstVal : std::uint8_t {
  kZero,     ///< provably tied low
  kOne,      ///< provably tied high
  kVarying,  ///< not a constant (or unknown)
};

/// Full lattice value of one net.
struct NetState {
  ConstVal cval = ConstVal::kVarying;
  /// Uninitialized-state taint: some register without a reset (or some
  /// undisciplined source) can place an undefined power-up value here.
  std::uint8_t taint = 0;
  /// Clock domains (DomainTable bits) whose registered data reaches here.
  std::uint32_t doms = 0;
  /// Reset domains whose reset network reaches here.
  std::uint32_t rsts = 0;

  friend bool operator==(const NetState&, const NetState&) = default;
};

/// Schedule-derived work counters for the last analyze/update; the same
/// numbers land on the "lint.dataflow.*" metrics. Thread-count-invariant
/// by construction (they count scheduled evaluations, not pool activity).
struct DataflowStats {
  std::uint64_t full_sweeps = 0;  ///< whole-netlist forward sweeps run
  std::uint64_t cone_passes = 0;  ///< incremental forward-cone recomputes
  std::uint64_t evals = 0;        ///< instance transfer evaluations, total
  std::uint64_t reuses = 0;       ///< refresh() calls satisfied from cache
};

/// The engine. One instance per analyzed netlist; all queries are valid
/// only after a successful analyze()/refresh() (valid() == true).
class DataflowEngine {
 public:
  /// Full analysis: build the domain table and schedule, seed ports and
  /// registers, run one forward sweep (parallel when threads != 1) and
  /// the reverse observability/reachability passes. Fails — leaving the
  /// engine invalid and the GL-D/GL-X rules silent — on a combinational
  /// cycle or a structurally unsound netlist.
  [[nodiscard]] common::Status analyze(const netlist::Netlist& nl,
                                       const std::vector<DomainDecl>& decls,
                                       int threads = 1);

  /// Resident-service sync: no-op when the engine is valid and
  /// Netlist::version() is unchanged (counts a reuse); otherwise a full
  /// analyze().
  [[nodiscard]] common::Status refresh(const netlist::Netlist& nl,
                                       const std::vector<DomainDecl>& decls,
                                       int threads = 1);

  /// After one input rewire of `inst` (instance/net counts unchanged):
  /// rebuild the schedule, re-evaluate only the combinational forward
  /// cone of `inst` (cut at register boundaries — register outputs are
  /// seeds), and redo the reverse passes. Falls back to a full analyze()
  /// when the engine is invalid or the netlist grew.
  [[nodiscard]] common::Status update_rewire(const netlist::Netlist& nl,
                                             InstanceId inst, int threads = 1);

  /// After a clock-phase edit on a sequential instance: re-seed that
  /// register and re-evaluate its combinational forward cone. Falls back
  /// to a full analyze() when the new phase has no bit in the domain
  /// table yet (the table itself must grow).
  [[nodiscard]] common::Status update_clock(const netlist::Netlist& nl,
                                            InstanceId inst, int threads = 1);

  /// After a value-only edit with no lattice impact (drive override,
  /// same-function cell swap): mark the lattice synchronized with the
  /// netlist's current version. No recomputation.
  void resync_value(const netlist::Netlist& nl) {
    if (valid_) synced_version_ = nl.version();
  }

  [[nodiscard]] bool valid() const { return valid_; }
  /// Netlist::version() the lattice is synchronized with.
  [[nodiscard]] std::uint64_t synced_version() const {
    return synced_version_;
  }

  [[nodiscard]] const DomainTable& domains() const { return table_; }
  [[nodiscard]] const NetState& state(NetId n) const {
    return states_[n.index()];
  }
  /// Net value can influence a primary output or captured register state
  /// (after constant-mux-select folding).
  [[nodiscard]] bool observed(NetId n) const {
    return observed_[n.index()] != 0;
  }
  /// Net structurally reaches a primary output (no value folding) — the
  /// GL-S006 notion of liveness, used to keep GL-X002 disjoint from it.
  [[nodiscard]] bool reaches_po(NetId n) const {
    return reaches_po_[n.index()] != 0;
  }
  [[nodiscard]] const sta::CompactGraph& graph() const { return graph_; }
  [[nodiscard]] const DataflowStats& stats() const { return stats_; }

 private:
  void seed_ports(const netlist::Netlist& nl);
  void eval_instance(const netlist::Netlist& nl, InstanceId id);
  void forward_sweep(const netlist::Netlist& nl, int threads);
  void reverse_passes(const netlist::Netlist& nl);
  [[nodiscard]] common::Status
  recompute_cones(const netlist::Netlist& nl,
                  const std::vector<InstanceId>& roots);

  sta::CompactGraph graph_;
  DomainTable table_;
  std::vector<DomainDecl> decls_;
  std::vector<NetState> states_;
  std::vector<std::uint8_t> observed_;
  std::vector<std::uint8_t> reaches_po_;
  DataflowStats stats_;
  bool valid_ = false;
  std::uint64_t synced_version_ = 0;
};

}  // namespace gap::lint
