#pragma once
/// \file lint.hpp
/// gap::lint — rule-based static analysis of a design (ERC). A rule is a
/// small object with an id ("GL-S001"), a category, a default severity,
/// and a run() that scans a LintContext (netlist + library + constraints)
/// for violations; all built-in rules live in one RuleRegistry, and
/// run_lint() evaluates the registry deterministically (findings are
/// sorted, and the thread count never changes the report).
///
/// Severity overrides and waivers come from a gaplint.toml-style config
/// (parse_config): `[rules]` maps rule ids to off/note/warn/error,
/// `[[waive]]` entries suppress individual findings by rule + anchor glob
/// with a mandatory justification, `[constraints]` supplies the clock
/// period the constraint rules check against.
///
/// Reports render as text, stable JSON, or SARIF 2.1.0 (report.hpp); the
/// gaplint CLI (lint_cli.hpp) and the core::Flow pre-flow gate
/// (FlowOptions::lint) are the two consumers. See docs/static-analysis.md
/// for the rule catalog.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "lint/domains.hpp"
#include "netlist/verilog.hpp"
#include "tech/technology.hpp"

namespace gap::lint {

class DataflowEngine;  // dataflow.hpp

/// Rule category (the six families of the catalog).
enum class Category : std::uint8_t {
  kStructural,   ///< connectivity: drivers, sinks, cycles
  kElectrical,   ///< fanout / load / transition / wire limits
  kClock,        ///< clocking and register style
  kConstraint,   ///< timing constraints and I/O assumptions
  kDomain,       ///< clock/reset-domain propagation (dataflow engine)
  kDataflow,     ///< constants, dead logic, X-reachability (dataflow engine)
};
[[nodiscard]] const char* to_string(Category c);

/// Identity and defaults of one rule.
struct RuleInfo {
  std::string id;                 ///< stable id, e.g. "GL-S001"
  Category category = Category::kStructural;
  common::Severity default_severity = common::Severity::kWarning;
  std::string title;              ///< one-line summary for --list-rules
};

/// What a finding points at.
enum class AnchorKind : std::uint8_t { kDesign, kNet, kInstance, kPort };
[[nodiscard]] const char* to_string(AnchorKind k);

/// One violation. `severity` is the effective severity after config
/// overrides; `loc` is valid only for findings derived from input text
/// (the lenient Verilog reader's violations).
struct Finding {
  std::string rule;
  common::Severity severity = common::Severity::kWarning;
  AnchorKind anchor = AnchorKind::kDesign;
  std::string anchor_name;  ///< net/instance/port name; design name for kDesign
  std::string message;
  common::SourceLoc loc;
  bool waived = false;
  std::string waiver_justification;
};

/// Externally supplied timing context (the netlist itself carries none).
struct LintConstraints {
  std::optional<double> period_tau;
  std::optional<double> skew_fraction;
};

/// Everything a rule may look at. The netlist is mandatory; parse
/// violations are present when the design came through
/// netlist::read_verilog_lenient.
struct LintContext {
  const netlist::Netlist* nl = nullptr;
  tech::ElectricalLimits limits;
  LintConstraints constraints;
  const std::vector<netlist::VerilogViolation>* parse_violations = nullptr;
  /// Precomputed dataflow lattice for the GL-D/GL-X rules. When null,
  /// run_lint() builds one on demand if any such rule is enabled; a
  /// resident service (gapd) passes its cached per-session engine here.
  const DataflowEngine* dataflow = nullptr;
};

/// One rule. Implementations must be pure functions of the context:
/// run() is called concurrently with other rules' run() on the same
/// context and must not mutate shared state.
class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual const RuleInfo& info() const = 0;
  virtual void run(const LintContext& ctx, std::vector<Finding>& out) const = 0;
};

/// Ordered rule collection; ids are unique. Catalog order is the order
/// rules were added (the built-in registry adds them in id order).
class RuleRegistry {
 public:
  /// Add a rule; duplicate ids are a programming error (contract).
  void add(std::unique_ptr<Rule> rule);

  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const Rule& rule(std::size_t i) const { return *rules_[i]; }
  [[nodiscard]] const Rule* find(const std::string& id) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// The built-in catalog (see docs/static-analysis.md), in id order.
[[nodiscard]] RuleRegistry default_registry();

// --- configuration and waivers ------------------------------------------

/// Per-rule severity override from a config file.
enum class SeverityOverride : std::uint8_t { kOff, kNote, kWarning, kError };

/// One waiver: suppress findings of `rule` whose anchor kind matches and
/// whose anchor name matches `pattern` ('*' wildcards). The justification
/// is mandatory — an unexplained waiver is rejected at parse time.
struct Waiver {
  std::string rule;
  AnchorKind kind = AnchorKind::kNet;
  std::string pattern;
  std::string justify;
};

/// Parsed gaplint.toml-subset configuration.
struct LintConfig {
  std::vector<std::pair<std::string, SeverityOverride>> rule_levels;
  std::vector<Waiver> waivers;
  LintConstraints constraints;
  /// `[[domain]]` declarations naming clock domains, in file order.
  std::vector<DomainDecl> domains;
};

/// Parse a config text. Validates rule ids against `registry`, requires
/// `justify` on every waiver, and reports malformed lines with their
/// line:column — untrusted-input path, never aborts.
[[nodiscard]] common::Result<LintConfig> parse_config(
    const std::string& text, const RuleRegistry& registry);

/// '*'-wildcard match ('*' matches any, possibly empty, substring).
[[nodiscard]] bool glob_match(const std::string& pattern,
                              const std::string& text);

// --- evaluation ----------------------------------------------------------

struct LintSummary {
  int errors = 0;    ///< non-waived error findings
  int warnings = 0;  ///< non-waived warning findings
  int notes = 0;     ///< non-waived note findings
  int waived = 0;    ///< findings suppressed by a waiver
};

/// Result of one lint run: all findings (waived ones flagged, not
/// dropped), sorted by (rule, anchor kind, anchor, location, message).
struct LintReport {
  std::vector<Finding> findings;
  LintSummary summary;
  [[nodiscard]] bool has_errors() const { return summary.errors > 0; }
};

/// Evaluate every registry rule against the context, fan the rules out
/// over `threads` workers (0 = all cores), then apply the config's
/// severity overrides and waivers. The report is byte-identical at any
/// thread count. Rules overridden to `off` are not run at all.
[[nodiscard]] LintReport run_lint(const RuleRegistry& registry,
                                  const LintContext& ctx,
                                  const LintConfig& config, int threads = 1);

}  // namespace gap::lint
