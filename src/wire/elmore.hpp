#pragma once
/// \file elmore.hpp
/// First-order RC wire delay (Elmore) in the spirit of BACPAC, the
/// analytical chip model the paper used for its floorplanning experiment
/// (section 5.1, footnote 3). A net is modeled as a distributed RC line of
/// the annotated length with the sink pins lumped at the far end.

#include "tech/technology.hpp"

namespace gap::wire {

/// Properties of a wire segment in a given technology, with an optional
/// width multiple (wire sizing reduces resistance linearly while
/// increasing capacitance sub-linearly; we model the area component only).
struct WireSegment {
  double length_um = 0.0;
  double width_multiple = 1.0;  ///< 1.0 = minimum width

  [[nodiscard]] double resistance_ohm(const tech::Technology& t) const {
    return t.wire_r_ohm_per_um * length_um / width_multiple;
  }
  [[nodiscard]] double capacitance_ff(const tech::Technology& t) const {
    // Widening multiplies the parallel-plate (area) part, about 60% of
    // total cap at these geometries; fringing stays constant.
    const double area_frac = 0.6;
    const double scale = area_frac * width_multiple + (1.0 - area_frac);
    return t.wire_c_ff_per_um * length_um * scale;
  }
};

/// Elmore delay in ps of a distributed line driving a lumped sink load:
///   t = R * (C/2 + Csink)
[[nodiscard]] double elmore_delay_ps(const tech::Technology& t,
                                     const WireSegment& seg,
                                     double sink_cap_ff);

/// Same, returned in tau units of the technology.
[[nodiscard]] double elmore_delay_tau(const tech::Technology& t,
                                      const WireSegment& seg,
                                      double sink_cap_units);

/// Total capacitance of the segment in unit input capacitances.
[[nodiscard]] double wire_cap_units(const tech::Technology& t,
                                    const WireSegment& seg);

}  // namespace gap::wire
