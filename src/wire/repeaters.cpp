#include "wire/repeaters.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gap::wire {

double unrepeated_delay_ps(const tech::Technology& t, const WireSegment& seg,
                           double driver_drive, double sink_cap_ff) {
  GAP_EXPECTS(driver_drive > 0.0);
  const double r_drv = t.unit_drive_r_ohm() / driver_drive;
  const double c_wire = seg.capacitance_ff(t);
  const double r_wire = seg.resistance_ohm(t);
  // Driver sees all of the wire plus the sink; the wire's distributed
  // resistance sees half its own cap plus the sink.
  const double fs =
      r_drv * (c_wire + sink_cap_ff) + r_wire * (c_wire / 2.0 + sink_cap_ff);
  return fs / 1000.0;
}

RepeaterPlan plan_repeaters(const tech::Technology& t, const WireSegment& seg,
                            double sink_cap_ff) {
  const double r0 = t.unit_drive_r_ohm();
  const double c0 = t.unit_inv_cin_ff;
  const double rw = seg.resistance_ohm(t);
  const double cw = seg.capacitance_ff(t);

  RepeaterPlan best;
  best.num_repeaters = 0;
  best.repeater_size = 8.0;
  best.delay_ps = unrepeated_delay_ps(t, seg, best.repeater_size, sink_cap_ff);

  if (rw <= 0.0 || cw <= 0.0) return best;

  const double k_star = std::sqrt(rw * cw / (2.0 * r0 * c0));
  const double h_star = std::sqrt(r0 * cw / (rw * c0));

  // Evaluate integer segment counts around the optimum.
  for (int k = std::max(1, static_cast<int>(k_star) - 1);
       k <= static_cast<int>(k_star) + 2; ++k) {
    const double h = std::max(1.0, h_star);
    const double seg_r = rw / k;
    const double seg_c = cw / k;
    const double drv_r = r0 / h;
    // Per segment: driver drives segment wire + next repeater input.
    const double per_seg_fs =
        drv_r * (seg_c + h * c0) + seg_r * (seg_c / 2.0 + h * c0);
    // Last segment drives the sink instead of another repeater.
    const double last_fs =
        drv_r * (seg_c + sink_cap_ff) + seg_r * (seg_c / 2.0 + sink_cap_ff);
    const double total_ps = ((k - 1) * per_seg_fs + last_fs) / 1000.0;
    if (total_ps < best.delay_ps) {
      best.delay_ps = total_ps;
      best.num_repeaters = k - 1;
      best.repeater_size = h;
    }
  }
  return best;
}

double repeated_delay_ps_per_mm(const tech::Technology& t) {
  WireSegment seg;
  seg.length_um = 10000.0;  // long enough to be in the linear regime
  const RepeaterPlan plan = plan_repeaters(t, seg, t.unit_inv_cin_ff);
  return plan.delay_ps / 10.0;
}

}  // namespace gap::wire
