#pragma once
/// \file repeaters.hpp
/// Optimal repeater (buffer) insertion for long wires — the "proper
/// driving of a wire" of section 5. For a wire with total resistance R and
/// capacitance C driven through inverters of unit resistance R0 and input
/// capacitance C0, the classic optimum is
///   k* = sqrt(R C / (2 R0 C0)) segments,
///   h* = sqrt(R0 C / (R C0)) sized drivers,
/// giving delay linear in length instead of quadratic.

#include "tech/technology.hpp"
#include "wire/elmore.hpp"

namespace gap::wire {

struct RepeaterPlan {
  int num_repeaters = 0;     ///< k - 1 inserted inverters (k segments)
  double repeater_size = 1.0;  ///< drive of each repeater
  double delay_ps = 0.0;       ///< end-to-end delay including repeaters
};

/// Delay of an unrepeated wire driven by a driver of the given drive
/// strength (unit multiples), including the driver's own delay into the
/// wire, in ps.
[[nodiscard]] double unrepeated_delay_ps(const tech::Technology& t,
                                         const WireSegment& seg,
                                         double driver_drive,
                                         double sink_cap_ff);

/// Optimal repeater plan for the segment. If the wire is short enough that
/// repeaters do not help, returns num_repeaters == 0 with the unrepeated
/// delay for a reasonable (size-8) driver.
[[nodiscard]] RepeaterPlan plan_repeaters(const tech::Technology& t,
                                          const WireSegment& seg,
                                          double sink_cap_ff);

/// Delay in ps per mm of an optimally repeated minimum-width wire
/// (technology figure of merit used by the floorplanning experiment).
[[nodiscard]] double repeated_delay_ps_per_mm(const tech::Technology& t);

}  // namespace gap::wire
