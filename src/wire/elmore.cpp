#include "wire/elmore.hpp"

#include "common/check.hpp"

namespace gap::wire {

double elmore_delay_ps(const tech::Technology& t, const WireSegment& seg,
                       double sink_cap_ff) {
  GAP_EXPECTS(seg.length_um >= 0.0);
  const double r = seg.resistance_ohm(t);
  const double c = seg.capacitance_ff(t);
  // ohm * fF = femtoseconds; divide by 1000 for ps.
  return r * (c / 2.0 + sink_cap_ff) / 1000.0;
}

double elmore_delay_tau(const tech::Technology& t, const WireSegment& seg,
                        double sink_cap_units) {
  const double sink_ff = sink_cap_units * t.unit_inv_cin_ff;
  return t.ps_to_tau(elmore_delay_ps(t, seg, sink_ff));
}

double wire_cap_units(const tech::Technology& t, const WireSegment& seg) {
  return t.cap_to_units(seg.capacitance_ff(t));
}

}  // namespace gap::wire
