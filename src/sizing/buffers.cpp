#include "sizing/buffers.hpp"


#include <algorithm>
#include "common/check.hpp"
#include "netlist/checks.hpp"

namespace gap::sizing {

using library::Family;
using library::Func;
using netlist::Netlist;
using netlist::NetSink;

namespace {

/// Combinational depth from each instance to its furthest endpoint; used
/// to keep the most critical sink of a split net directly connected.
std::vector<int> depth_to_endpoint(const Netlist& nl) {
  std::vector<int> depth(nl.num_instances(), 0);
  const auto order = netlist::topo_order(nl);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const InstanceId id = *it;
    if (nl.is_sequential(id)) continue;
    int d = 0;
    for (const NetSink& s : nl.net(nl.instance(id).output).sinks)
      if (s.kind == NetSink::Kind::kInstancePin && !nl.is_sequential(s.inst))
        d = std::max(d, depth[s.inst.index()]);
    depth[id.index()] = d + 1;
  }
  return depth;
}

/// Split one overloaded net: keep the most critical sink direct, move the
/// other instance sinks onto `branches` buffers, each taking an equal
/// share. New buffers inherit the driver's placement so wire annotations
/// stay sane.
int split_net(Netlist& nl, NetId nid, int branches, bool have_buf,
              const std::vector<int>& crit_depth) {
  std::vector<NetSink> to_move;
  for (const NetSink& s : nl.net(nid).sinks)
    if (s.kind == NetSink::Kind::kInstancePin) to_move.push_back(s);
  if (to_move.size() < 3) return 0;

  // Keep the deepest-downstream sink on the direct net.
  std::size_t keep = 0;
  for (std::size_t i = 1; i < to_move.size(); ++i)
    if (crit_depth[to_move[i].inst.index()] >
        crit_depth[to_move[keep].inst.index()])
      keep = i;
  to_move.erase(to_move.begin() + static_cast<std::ptrdiff_t>(keep));

  double x = -1.0, y = -1.0;
  if (nl.net(nid).driver.kind == netlist::NetDriver::Kind::kInstance) {
    const netlist::Instance& drv = nl.instance(nl.net(nid).driver.inst);
    x = drv.x_um;
    y = drv.y_um;
  }

  const library::CellLibrary& lib = nl.lib();
  int inserted = 0;
  const std::size_t per_branch =
      (to_move.size() + static_cast<std::size_t>(branches) - 1) /
      static_cast<std::size_t>(branches);
  for (std::size_t b = 0; b * per_branch < to_move.size(); ++b) {
    double moved = 0.0;
    for (std::size_t i = b * per_branch;
         i < std::min((b + 1) * per_branch, to_move.size()); ++i)
      moved += nl.pin_cap(to_move[i].inst);
    const double want_drive = std::max(1.0, moved / 4.0);

    const NetId buffered = nl.add_net(nl.fresh_name("bufnet"));
    InstanceId buf_inst;
    if (have_buf) {
      const CellId buf =
          *lib.best_for_drive(Func::kBuf, Family::kStatic, want_drive);
      buf_inst = nl.add_instance(nl.fresh_name("buf"), buf, {nid}, buffered);
      ++inserted;
    } else {
      const CellId inv_small = *lib.best_for_drive(
          Func::kInv, Family::kStatic, std::max(1.0, want_drive / 4.0));
      const CellId inv_big =
          *lib.best_for_drive(Func::kInv, Family::kStatic, want_drive);
      const NetId mid = nl.add_net(nl.fresh_name("bufmid"));
      const InstanceId a =
          nl.add_instance(nl.fresh_name("bufa"), inv_small, {nid}, mid);
      buf_inst = nl.add_instance(nl.fresh_name("bufb"), inv_big, {mid},
                                 buffered);
      nl.instance(a).x_um = x;
      nl.instance(a).y_um = y;
      inserted += 2;
    }
    nl.instance(buf_inst).x_um = x;
    nl.instance(buf_inst).y_um = y;
    for (std::size_t i = b * per_branch;
         i < std::min((b + 1) * per_branch, to_move.size()); ++i)
      nl.rewire_input(to_move[i].inst, to_move[i].pin, buffered);
  }
  return inserted;
}

}  // namespace

BufferResult insert_buffers(Netlist& nl, double max_load_units) {
  GAP_EXPECTS(max_load_units > 0.0);
  BufferResult result;
  const bool have_buf = nl.lib().has(Func::kBuf, Family::kStatic);

  // Iterate to a fixpoint: splitting builds a fanout tree level by level.
  for (int level = 0; level < 6; ++level) {
    bool any = false;
    const auto crit_depth = depth_to_endpoint(nl);
    const auto nets = nl.all_nets();  // snapshot: splitting adds nets
    for (NetId nid : nets) {
      const double load = nl.net_load(nid);
      if (load <= max_load_units) continue;
      const int branches = std::min(
          4, static_cast<int>(load / max_load_units) + 1);
      const int inserted = split_net(nl, nid, branches, have_buf, crit_depth);
      if (inserted > 0) {
        result.buffers_inserted += inserted;
        any = true;
      }
    }
    if (!any) break;
  }
  return result;
}

}  // namespace gap::sizing
