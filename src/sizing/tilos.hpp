#pragma once
/// \file tilos.hpp
/// Gate sizing in the style of TILOS (Fishburn & Dunlop, ICCAD '85 — the
/// paper's reference [7]): repeatedly upsize the gate on the critical path
/// with the best delay-gain estimate, re-running STA after each move.
///
/// Two sizing regimes mirror section 6:
///  - discrete: repowering within the library's drive ladder (any ASIC);
///  - continuous: arbitrary drive via Instance::drive_override (custom).
/// recover_area() is the complementary pass ("sizing transistors minimally
/// to reduce power consumption, except on critical paths").

#include "netlist/netlist.hpp"
#include "sta/incremental.hpp"
#include "sta/sta.hpp"

namespace gap::sizing {

struct SizingOptions {
  sta::StaOptions sta;

  /// Continuous transistor sizing (custom methodology). When false, moves
  /// are restricted to the cells present in the library.
  bool continuous = false;
  double continuous_step = 1.15;  ///< multiplicative drive step
  double max_drive = 64.0;        ///< cap for continuous sizing

  int max_moves = 4000;
  double min_gain_tau = 1e-4;  ///< stop when the best move gains less

  /// Re-time each move through a resident sta::IncrementalTimer instead
  /// of a from-scratch sta::analyze. Timing queries are byte-identical
  /// either way (the incremental engine's contract), so moves — and the
  /// final netlist — do not depend on this switch; only the work per
  /// re-time does.
  bool incremental = true;
};

struct SizingResult {
  int moves = 0;
  double initial_period_tau = 0.0;
  double final_period_tau = 0.0;

  [[nodiscard]] double speedup() const {
    return final_period_tau > 0.0 ? initial_period_tau / final_period_tau
                                  : 1.0;
  }
};

/// Initial drive selection as logic synthesis performs it ("initial logic
/// synthesis may choose drive strengths using estimations for wire
/// lengths and the net load a gate has to drive", section 6.2): set every
/// instance's drive so its electrical effort is about `stage_effort`,
/// iterating in reverse topological order because loads depend on sink
/// drives. Drives snap to the library ladder.
void initial_drive_assignment(netlist::Netlist& nl, double stage_effort = 4.0,
                              int iterations = 3);

/// Upsize critical-path gates until no move helps. Modifies `nl` in place.
/// With options.incremental (the default) a timer resident for the run
/// re-times each move; options.sta still defines the analysis.
SizingResult tilos_size(netlist::Netlist& nl, const SizingOptions& options);

/// tilos_size on an existing resident timer (its netlist is sized in
/// place through edits). `options.sta` is ignored in favor of the
/// timer's own options; `options.incremental` is moot.
SizingResult tilos_size(sta::IncrementalTimer& timer,
                        const SizingOptions& options);

/// Downsize gates with positive slack at the given period without creating
/// violations (checked by re-running STA). Returns area saved in um^2.
double recover_area(netlist::Netlist& nl, const SizingOptions& options,
                    double period_tau);

/// recover_area through a resident timer (see tilos_size overload).
double recover_area(sta::IncrementalTimer& timer,
                    const SizingOptions& options, double period_tau);

/// Remaining sizing headroom along a path (tau): the sum of the positive
/// TILOS gain estimates of the best next upsize of each gate on `path`.
/// Zero for a path TILOS has fully converged on; a large value flags a
/// run that left critical-path sizing on the table (the paper's section 6
/// ">= 20% critical-path sizing" sub-claim). Read-only: no move is made.
[[nodiscard]] double path_upsize_headroom_tau(
    const netlist::Netlist& nl, const std::vector<InstanceId>& path,
    const SizingOptions& options);

}  // namespace gap::sizing
