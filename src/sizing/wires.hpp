#pragma once
/// \file wires.hpp
/// Wire sizing on critical nets — the capability the paper flags as
/// future work for ASIC flows ("tools for wire sizing along with
/// transistor sizing may be available in the future (e.g. [6])",
/// section 6.2, citing Chen, Chu & Wong's Lagrangian relaxation).
/// Implemented here as greedy critical-net widening: widening divides a
/// wire's resistance while growing only its area capacitance, so RC-
/// dominated nets speed up. Accepted moves must improve the measured
/// period; a Lagrangian formulation is left to the optimizer-inclined.

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace gap::sizing {

struct WireSizingOptions {
  sta::StaOptions sta;
  double max_width = 4.0;   ///< widest allowed wire (min-width multiples)
  double step = 1.5;        ///< multiplicative width step
  int max_moves = 200;
  double min_length_um = 100.0;  ///< ignore short nets
};

struct WireSizingResult {
  int moves = 0;
  double initial_period_tau = 0.0;
  double final_period_tau = 0.0;
};

/// Widen RC-critical nets until no move improves the period.
WireSizingResult widen_critical_wires(netlist::Netlist& nl,
                                      const WireSizingOptions& options);

}  // namespace gap::sizing
