#pragma once
/// \file buffers.hpp
/// Buffer insertion on heavily loaded nets ("additional buffers may be
/// included to drive large capacitive loads", section 6). Splits a hot net
/// by inserting a buffer (or an inverter pair when the library has no
/// buffer cell) in front of its instance sinks.

#include "netlist/netlist.hpp"

namespace gap::sizing {

struct BufferResult {
  int buffers_inserted = 0;
};

/// Insert buffers on every net whose load exceeds `max_load_units`.
/// Preserves functionality (buffer or double inverter). Nets driving
/// primary outputs keep the PO on the original net.
BufferResult insert_buffers(netlist::Netlist& nl, double max_load_units);

}  // namespace gap::sizing
