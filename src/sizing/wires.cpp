#include "sizing/wires.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace gap::sizing {

WireSizingResult widen_critical_wires(netlist::Netlist& nl,
                                      const WireSizingOptions& options) {
  GAP_EXPECTS(options.step > 1.0);
  WireSizingResult result;
  sta::TimingResult timing = sta::analyze(nl, options.sta);
  result.initial_period_tau = timing.min_period_tau;
  result.final_period_tau = timing.min_period_tau;
  if (timing.num_endpoints == 0) return result;

  std::unordered_set<std::uint32_t> blocked;
  while (result.moves < options.max_moves) {
    // Longest wire on the critical path that can still widen.
    NetId best;
    double best_len = options.min_length_um;
    for (InstanceId id : timing.critical_path) {
      const NetId out = nl.instance(id).output;
      const netlist::Net& n = nl.net(out);
      if (blocked.contains(out.value())) continue;
      if (n.width_multiple >= options.max_width) continue;
      if (n.length_um > best_len) {
        best_len = n.length_um;
        best = out;
      }
    }
    if (!best.valid()) break;

    const double old_width = nl.net(best).width_multiple;
    nl.net(best).width_multiple =
        std::min(options.max_width, old_width * options.step);
    const sta::TimingResult after = sta::analyze(nl, options.sta);
    if (after.min_period_tau < result.final_period_tau - 1e-9) {
      timing = after;
      result.final_period_tau = after.min_period_tau;
      ++result.moves;
      blocked.clear();
    } else {
      nl.net(best).width_multiple = old_width;
      blocked.insert(best.value());
    }
  }
  return result;
}

}  // namespace gap::sizing
