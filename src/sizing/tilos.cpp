#include "sizing/tilos.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "netlist/checks.hpp"

namespace gap::sizing {
namespace {

using netlist::NetDriver;
using netlist::Netlist;

/// A candidate resize of one instance.
struct Move {
  InstanceId inst;
  CellId new_cell;            ///< discrete move (invalid if continuous)
  double new_override = 0.0;  ///< continuous move (0 if discrete)
  double gain_estimate = 0.0;
};

/// Drive the instance would have after the move.
double moved_drive(const Netlist& nl, const Move& m) {
  if (m.new_override > 0.0) return m.new_override;
  return nl.lib().cell(m.new_cell).drive;
}

/// Estimated path-delay gain of upsizing: the gate's own effort delay
/// shrinks; every fanin driver pays the extra input capacitance.
double estimate_gain(const Netlist& nl, InstanceId id, double new_drive) {
  const double old_drive = nl.drive_of(id);
  const double load = nl.net_load(nl.instance(id).output);
  const double own_gain = load / old_drive - load / new_drive;

  const double g = nl.cell_of(id).logical_effort;
  const double delta_cin = g * (new_drive - old_drive);
  double penalty = 0.0;
  for (NetId in : nl.instance(id).inputs) {
    const NetDriver& d = nl.net(in).driver;
    if (d.kind == NetDriver::Kind::kInstance)
      penalty = std::max(penalty, delta_cin / nl.drive_of(d.inst));
    else if (d.kind == NetDriver::Kind::kPrimaryInput)
      penalty = std::max(penalty, delta_cin / nl.port(d.port).ext_drive);
  }
  // The worst fanin is usually on the same critical path; others are not.
  return own_gain - penalty;
}

/// Best available upsize of `id`, if any.
std::optional<Move> upsize_move(const Netlist& nl, InstanceId id,
                                const SizingOptions& opt) {
  const library::Cell& c = nl.cell_of(id);
  const double cur = nl.drive_of(id);
  Move m;
  m.inst = id;
  if (opt.continuous) {
    const double next = cur * opt.continuous_step;
    if (next > opt.max_drive) return std::nullopt;
    m.new_override = next;
  } else {
    // Next cell up the ladder for the same function and family.
    const auto& ladder = nl.lib().cells_of(c.func, c.family);
    CellId next_cell;
    for (CellId cand : ladder) {
      if (nl.lib().cell(cand).drive > cur + 1e-12) {
        next_cell = cand;
        break;
      }
    }
    if (!next_cell.valid()) return std::nullopt;
    m.new_cell = next_cell;
  }
  m.gain_estimate = estimate_gain(nl, id, moved_drive(nl, m));
  return m;
}

/// Route a resize through the resident timer when there is one (keeping
/// its dirty cones exact), directly into the netlist otherwise. These
/// moves are generated from the library ladder, so timer validation
/// cannot fail — a rejection would be an internal contract violation.
void set_drive_override(Netlist& nl, sta::IncrementalTimer* timer,
                        InstanceId inst, double value) {
  if (timer != nullptr)
    GAP_EXPECTS(timer->apply(sta::Edit::set_drive(inst, value)).ok());
  else
    nl.instance(inst).drive_override = value;
}

void set_cell(Netlist& nl, sta::IncrementalTimer* timer, InstanceId inst,
              CellId cell) {
  if (timer != nullptr)
    GAP_EXPECTS(timer->apply(sta::Edit::replace_cell(inst, cell)).ok());
  else
    nl.replace_cell(inst, cell);
}

void apply(Netlist& nl, sta::IncrementalTimer* timer, const Move& m) {
  if (m.new_override > 0.0)
    set_drive_override(nl, timer, m.inst, m.new_override);
  else
    set_cell(nl, timer, m.inst, m.new_cell);
}

void undo(Netlist& nl, sta::IncrementalTimer* timer, const Move& m,
          CellId old_cell, double old_override) {
  if (m.new_override > 0.0)
    set_drive_override(nl, timer, m.inst, old_override);
  else
    set_cell(nl, timer, m.inst, old_cell);
}

SizingResult tilos_size_impl(Netlist& nl, const SizingOptions& options,
                             const sta::StaOptions& sta_options,
                             sta::IncrementalTimer* timer) {
  GAP_TRACE_SPAN("sizing::tilos");
  static common::Counter& runs = common::metrics().counter("tilos.runs");
  static common::Counter& iterations =
      common::metrics().counter("tilos.iterations");
  static common::Counter& accepted =
      common::metrics().counter("tilos.moves_accepted");
  static common::Counter& rejected =
      common::metrics().counter("tilos.moves_rejected");
  runs.add();

  const auto retime = [&] {
    return timer != nullptr ? timer->timing() : sta::analyze(nl, sta_options);
  };

  SizingResult result;
  sta::TimingResult timing = retime();
  result.initial_period_tau = timing.min_period_tau;
  result.final_period_tau = timing.min_period_tau;
  if (timing.num_endpoints == 0) return result;

  // Instances whose upsize was tried and made things worse.
  std::unordered_set<std::uint32_t> blocked;

  while (result.moves < options.max_moves) {
    iterations.add();
    // Best estimated move along the current critical path.
    std::optional<Move> best;
    for (InstanceId id : timing.critical_path) {
      if (blocked.contains(id.value())) continue;
      const auto m = upsize_move(nl, id, options);
      if (!m) continue;
      if (!best || m->gain_estimate > best->gain_estimate) best = m;
    }
    if (!best || best->gain_estimate <= options.min_gain_tau) break;

    const CellId old_cell = nl.instance(best->inst).cell;
    const double old_override = nl.instance(best->inst).drive_override;
    apply(nl, timer, *best);
    const sta::TimingResult after = retime();
    if (after.min_period_tau < result.final_period_tau - options.min_gain_tau) {
      timing = after;
      result.final_period_tau = after.min_period_tau;
      ++result.moves;
      accepted.add();
      blocked.clear();  // the landscape changed; retry earlier failures
    } else {
      undo(nl, timer, *best, old_cell, old_override);
      blocked.insert(best->inst.value());
      rejected.add();
    }
  }
  return result;
}

double recover_area_impl(Netlist& nl, const SizingOptions& options,
                         const sta::StaOptions& sta_options,
                         sta::IncrementalTimer* timer, double period_tau) {
  const double area_before = nl.total_area_um2();
  struct Applied {
    InstanceId inst;
    CellId old_cell;
    double old_override;
  };
  const auto reslack = [&] {
    return timer != nullptr ? timer->slacks(period_tau)
                            : sta::net_slacks(nl, sta_options, period_tau);
  };

  double safety = 0.5;  // accept a move only if est. delta < safety * slack
  for (int round = 0; round < 20; ++round) {
    const auto slacks = reslack();
    std::vector<Applied> batch;
    for (InstanceId id : nl.all_instances()) {
      const library::Cell& c = nl.cell_of(id);
      const double slack = slacks[nl.instance(id).output.index()];
      if (slack < 0.5) continue;  // keep margin on near-critical gates

      // Next cell down the ladder.
      const double cur = nl.drive_of(id);
      const auto& ladder = nl.lib().cells_of(c.func, c.family);
      CellId smaller;
      for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
        if (nl.lib().cell(*it).drive < cur - 1e-12) {
          smaller = *it;
          break;
        }
      }
      if (!smaller.valid()) continue;
      // Own delay increase bound: load / s_small - load / s_cur.
      const double load = nl.net_load(nl.instance(id).output);
      const double delta = load / nl.lib().cell(smaller).drive - load / cur;
      if (delta >= slack * safety) continue;
      batch.push_back(
          {id, nl.instance(id).cell, nl.instance(id).drive_override});
      set_drive_override(nl, timer, id, 0.0);
      set_cell(nl, timer, id, smaller);
    }
    if (batch.empty()) break;

    // One global verification per batch; revert wholesale on violation
    // and retry more conservatively.
    const auto after = reslack();
    double worst = 1e30;
    for (double s : after) worst = std::min(worst, s);
    if (worst < 0.0) {
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        set_cell(nl, timer, it->inst, it->old_cell);
        set_drive_override(nl, timer, it->inst, it->old_override);
      }
      safety *= 0.5;
      if (safety < 0.05) break;
    }
  }
  return area_before - nl.total_area_um2();
}

}  // namespace

void initial_drive_assignment(Netlist& nl, double stage_effort,
                              int iterations) {
  GAP_EXPECTS(stage_effort > 0.0);
  const auto order = netlist::topo_order(nl);
  for (int pass = 0; pass < iterations; ++pass) {
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const InstanceId id = *it;
      const library::Cell& c = nl.cell_of(id);
      const double load = nl.net_load(nl.instance(id).output);
      const double want = std::max(1.0, load / stage_effort);
      const auto cell =
          nl.lib().best_for_drive(c.func, c.family, want);
      if (!cell) continue;
      nl.instance(id).drive_override = 0.0;
      if (*cell != nl.instance(id).cell) nl.replace_cell(id, *cell);
    }
  }
}

SizingResult tilos_size(Netlist& nl, const SizingOptions& options) {
  if (options.incremental) {
    sta::IncrementalTimer timer(nl, options.sta);
    return tilos_size_impl(nl, options, options.sta, &timer);
  }
  return tilos_size_impl(nl, options, options.sta, nullptr);
}

SizingResult tilos_size(sta::IncrementalTimer& timer,
                        const SizingOptions& options) {
  return tilos_size_impl(timer.netlist(), options, timer.options(), &timer);
}

double recover_area(Netlist& nl, const SizingOptions& options,
                    double period_tau) {
  if (options.incremental) {
    sta::IncrementalTimer timer(nl, options.sta);
    return recover_area_impl(nl, options, options.sta, &timer, period_tau);
  }
  return recover_area_impl(nl, options, options.sta, nullptr, period_tau);
}

double recover_area(sta::IncrementalTimer& timer,
                    const SizingOptions& options, double period_tau) {
  return recover_area_impl(timer.netlist(), options, timer.options(), &timer,
                           period_tau);
}

double path_upsize_headroom_tau(const Netlist& nl,
                                const std::vector<InstanceId>& path,
                                const SizingOptions& options) {
  double headroom = 0.0;
  for (InstanceId id : path) {
    if (nl.is_sequential(id)) continue;
    const auto m = upsize_move(nl, id, options);
    if (m && m->gain_estimate > 0.0) headroom += m->gain_estimate;
  }
  return headroom;
}

}  // namespace gap::sizing
