#include "qor/manifest.hpp"

#include <sstream>

#include "common/json.hpp"
#include "sta/report.hpp"

namespace gap::qor {
namespace {

namespace json = common::json;

/// Tiny indentation-aware emitter. All numbers go through json::number
/// (%.17g), so the text is a pure function of the manifest values.
class Emitter {
 public:
  explicit Emitter(std::ostringstream& out) : out_(out) {}

  void line(int indent, const std::string& text) {
    for (int i = 0; i < indent; ++i) out_ << "  ";
    out_ << text << "\n";
  }
  static std::string quoted(const std::string& s) {
    return "\"" + json::escape(s) + "\"";
  }
  static std::string kv(const std::string& key, const std::string& raw) {
    return quoted(key) + ": " + raw;
  }

 private:
  std::ostringstream& out_;
};

std::string comma(bool last) { return last ? "" : ","; }

void emit_snapshot(Emitter& e, int ind, const QorSnapshot& s) {
  e.line(ind, "\"qor\": {");
  e.line(ind + 1, Emitter::kv("worst_path_tau", json::number(s.worst_path_tau)) + ",");
  e.line(ind + 1, Emitter::kv("min_period_tau", json::number(s.min_period_tau)) + ",");
  e.line(ind + 1, Emitter::kv("min_period_ps", json::number(s.min_period_ps)) + ",");
  e.line(ind + 1, Emitter::kv("min_period_fo4", json::number(s.min_period_fo4)) + ",");
  e.line(ind + 1, Emitter::kv("critical_path_fo4", json::number(s.critical_path_fo4)) + ",");
  e.line(ind + 1, Emitter::kv("critical_path_gates",
                              std::to_string(s.critical_path_gates)) + ",");
  e.line(ind + 1, Emitter::kv("endpoints", std::to_string(s.endpoints)) + ",");
  e.line(ind + 1, Emitter::kv("area_um2", json::number(s.area_um2)) + ",");
  e.line(ind + 1, Emitter::kv("total_wirelength_um",
                              json::number(s.total_wirelength_um)) + ",");
  e.line(ind + 1, Emitter::kv("critical_wirelength_um",
                              json::number(s.critical_wirelength_um)) + ",");
  e.line(ind + 1, Emitter::kv("sizing_headroom_tau",
                              json::number(s.sizing_headroom_tau)) + ",");
  e.line(ind + 1, "\"wave\": {");
  e.line(ind + 2, Emitter::kv("levels", std::to_string(s.wave_levels)) + ",");
  e.line(ind + 2, Emitter::kv("widest", std::to_string(s.wave_widest)) + ",");
  e.line(ind + 2, Emitter::kv("narrow_fraction",
                              json::number(s.wave_narrow_fraction)));
  e.line(ind + 1, "},");
  // The histogram object comes from sta::slack_histogram_json so the
  // bucket semantics stay single-sourced with the text rendering.
  const bool mc = s.mc_samples > 0;
  e.line(ind + 1, Emitter::kv("slack_histogram",
                              sta::slack_histogram_json(s.slack_histogram)) +
                      comma(!mc));
  if (mc) {
    e.line(ind + 1, "\"variation\": {");
    e.line(ind + 2, Emitter::kv("samples", std::to_string(s.mc_samples)) + ",");
    e.line(ind + 2, Emitter::kv("relative_spread",
                                json::number(s.mc_relative_spread)) + ",");
    e.line(ind + 2, Emitter::kv("mean_shift", json::number(s.mc_mean_shift)));
    e.line(ind + 1, "}");
  }
  e.line(ind, "}");
}

void emit_attribution_path(Emitter& e, int ind, const PathAttribution& a,
                           bool last) {
  e.line(ind, "{");
  e.line(ind + 1, Emitter::kv("delay_tau", json::number(a.delay_tau)) + ",");
  e.line(ind + 1, Emitter::kv("gates", std::to_string(a.gates)) + ",");
  e.line(ind + 1, "\"buckets\": {");
  e.line(ind + 2, Emitter::kv("logic_depth_tau",
                              json::number(a.logic_depth_tau)) + ",");
  e.line(ind + 2, Emitter::kv("placement_wire_tau",
                              json::number(a.placement_wire_tau)) + ",");
  e.line(ind + 2, Emitter::kv("sizing_tau", json::number(a.sizing_tau)) + ",");
  e.line(ind + 2, Emitter::kv("logic_style_tau",
                              json::number(a.logic_style_tau)) + ",");
  e.line(ind + 2, Emitter::kv("process_margin_tau",
                              json::number(a.process_margin_tau)));
  e.line(ind + 1, "},");
  e.line(ind + 1, Emitter::kv("sequential_overhead_tau",
                              json::number(a.sequential_overhead_tau)) + ",");
  e.line(ind + 1, Emitter::kv("domino_headroom_tau",
                              json::number(a.domino_headroom_tau)));
  e.line(ind, "}" + comma(last));
}

}  // namespace

std::string write_json(const RunManifest& m) {
  std::ostringstream out;
  Emitter e(out);
  e.line(0, "{");
  e.line(1, Emitter::kv("schema_version",
                        std::to_string(kManifestSchemaVersion)) + ",");
  e.line(1, Emitter::kv("tool", "\"gapflow\"") + ",");
  e.line(1, Emitter::kv("design", Emitter::quoted(m.design)) + ",");
  e.line(1, Emitter::kv("methodology",
                        Emitter::quoted(m.context.methodology_name)) + ",");
  e.line(1, "\"corner\": {");
  e.line(2, Emitter::kv("name", Emitter::quoted(m.context.corner_name)) + ",");
  e.line(2, Emitter::kv("delay_factor",
                        json::number(m.context.corner_delay_factor)));
  e.line(1, "},");
  e.line(1, Emitter::kv("seed", std::to_string(m.seed)) + ",");

  e.line(1, "\"config\": {");
  for (std::size_t i = 0; i < m.config.size(); ++i)
    e.line(2, Emitter::kv(m.config[i].first,
                          Emitter::quoted(m.config[i].second)) +
                  comma(i + 1 == m.config.size()));
  e.line(1, "},");

  e.line(1, "\"stages\": [");
  for (std::size_t i = 0; i < m.stages.size(); ++i) {
    const ManifestStage& s = m.stages[i];
    e.line(2, "{");
    e.line(3, Emitter::kv("name", Emitter::quoted(s.name)) + ",");
    e.line(3, Emitter::kv("status", Emitter::quoted(s.status)) + ",");
    const bool more = s.qor.has_value() || !s.metric_deltas.empty();
    e.line(3, Emitter::kv("diagnostics", std::to_string(s.diagnostics)) +
                  comma(!more));
    if (!s.metric_deltas.empty()) {
      e.line(3, "\"metric_deltas\": {");
      for (std::size_t j = 0; j < s.metric_deltas.size(); ++j)
        e.line(4, Emitter::kv(s.metric_deltas[j].first,
                              std::to_string(s.metric_deltas[j].second)) +
                      comma(j + 1 == s.metric_deltas.size()));
      e.line(3, "}" + comma(!s.qor.has_value()));
    }
    if (s.qor) emit_snapshot(e, 3, *s.qor);
    e.line(2, "}" + comma(i + 1 == m.stages.size()));
  }
  e.line(1, "],");

  if (m.attribution) {
    const ManifestAttribution& a = *m.attribution;
    e.line(1, "\"attribution\": {");
    e.line(2, "\"paths\": [");
    for (std::size_t i = 0; i < a.paths.size(); ++i)
      emit_attribution_path(e, 3, a.paths[i], i + 1 == a.paths.size());
    e.line(2, "],");
    e.line(2, "\"gap_score\": {");
    e.line(3, Emitter::kv("pipelining", json::number(a.score.pipelining)) + ",");
    e.line(3, Emitter::kv("placement_wire",
                          json::number(a.score.placement_wire)) + ",");
    e.line(3, Emitter::kv("sizing", json::number(a.score.sizing)) + ",");
    e.line(3, Emitter::kv("logic_style",
                          json::number(a.score.logic_style)) + ",");
    e.line(3, Emitter::kv("process", json::number(a.score.process)) + ",");
    e.line(3, Emitter::kv("composed", json::number(a.score.composed())));
    e.line(2, "}");
    e.line(1, "},");
  }

  e.line(1, "\"diagnostics\": {");
  e.line(2, Emitter::kv("notes", std::to_string(m.notes)) + ",");
  e.line(2, Emitter::kv("warnings", std::to_string(m.warnings)) + ",");
  e.line(2, Emitter::kv("errors", std::to_string(m.errors)));
  e.line(1, "},");

  e.line(1, "\"result\": {");
  e.line(2, Emitter::kv("ok", m.ok ? "true" : "false") + ",");
  e.line(2, Emitter::kv("frequency_mhz", json::number(m.freq_mhz)) + ",");
  e.line(2, Emitter::kv("area_um2", json::number(m.area_um2)) + ",");
  e.line(2, Emitter::kv("pipeline_registers",
                        std::to_string(m.pipeline_registers)) + ",");
  e.line(2, Emitter::kv("sizing_moves", std::to_string(m.sizing_moves)));
  e.line(1, "}");
  e.line(0, "}");
  return out.str();
}

}  // namespace gap::qor
