#pragma once
/// \file snapshot.hpp
/// Per-stage QoR (quality-of-results) snapshot: the handful of numbers a
/// timing-closure loop actually watches between runs — worst path / min
/// period, critical-path FO4 depth, endpoint slack distribution, area,
/// wirelength, remaining sizing headroom, and (at signoff, on request)
/// the Monte Carlo variation spread. Captured by the core::Flow stage
/// guard after each successful stage and stored beside the stage's
/// metric deltas in the FlowReport, so every `gapflow` run can emit a
/// machine-readable QoR trajectory (docs/qor.md).
///
/// Determinism contract: everything in a snapshot is a pure function of
/// the netlist and the options (MC uses counter-based RNG streams), so
/// snapshots — and the manifests built from them — are bit-identical at
/// any thread count.

#include <cstddef>
#include <cstdint>

#include "netlist/netlist.hpp"
#include "sta/incremental.hpp"
#include "sta/report.hpp"
#include "sta/sta.hpp"

namespace gap::qor {

/// Knobs for capture(). The sta options must match the ones the flow
/// signs off with, or stage-to-stage deltas would mix corners.
struct SnapshotOptions {
  sta::StaOptions sta;
  int histogram_buckets = 10;
  /// Sizing regime of the run, for the headroom probe (continuous =
  /// custom methodology; discrete = library drive ladder).
  bool continuous_sizing = false;
  /// Monte Carlo variation spread (signoff stages only; expensive).
  /// 0 disables; > 0 runs sta::monte_carlo_sta with this many samples.
  int mc_samples = 0;
  std::uint64_t mc_seed = 1;
  int mc_threads = 1;
};

/// One stage's QoR. All delays in tau of the netlist's technology unless
/// suffixed otherwise.
struct QorSnapshot {
  // --- timing ---
  double worst_path_tau = 0.0;
  double min_period_tau = 0.0;
  double min_period_ps = 0.0;
  double min_period_fo4 = 0.0;
  /// Critical-path depth in FO4 units (worst path / 5 tau) and gates.
  double critical_path_fo4 = 0.0;
  std::size_t critical_path_gates = 0;
  std::size_t endpoints = 0;
  /// Endpoint slack distribution at this stage's own min period.
  sta::SlackHistogramData slack_histogram;

  // --- physical ---
  double area_um2 = 0.0;
  double total_wirelength_um = 0.0;
  /// Wirelength of the nets on the critical path.
  double critical_wirelength_um = 0.0;

  // --- optimization headroom ---
  /// Positive TILOS gain estimates left on the critical path.
  double sizing_headroom_tau = 0.0;

  // --- wavefront schedule ---
  /// Shape of the levelized wavefront schedule the parallel timing
  /// kernels sweep (docs/observability.md): level count, widest wave,
  /// and the share of waves narrower than sta::kWaveDispatchHint. A pure
  /// function of the netlist — identical on the pointer and compact
  /// graph paths and at any thread count.
  std::size_t wave_levels = 0;
  std::size_t wave_widest = 0;
  double wave_narrow_fraction = 0.0;

  // --- statistical (mc_samples > 0 only) ---
  int mc_samples = 0;                ///< 0 = section absent
  double mc_relative_spread = 0.0;   ///< (q95-q05)/median of the period
  double mc_mean_shift = 0.0;        ///< median vs nominal period
};

/// Measure the netlist as it stands. Runs STA (arrival + required-time
/// passes) plus, when requested, a Monte Carlo; read-only.
[[nodiscard]] QorSnapshot capture(const netlist::Netlist& nl,
                                  const SnapshotOptions& options);

/// capture() through a resident incremental timer: the deterministic
/// timing numbers come from the timer's cached state instead of a
/// from-scratch analysis. Byte-identical to capture(timer.netlist(), ...)
/// with matching options.sta — the timer's contract — just cheaper after
/// a small edit. The MC probe still builds its own per-sample analyses.
[[nodiscard]] QorSnapshot capture(sta::IncrementalTimer& timer,
                                  const SnapshotOptions& options);

}  // namespace gap::qor
