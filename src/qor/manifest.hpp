#pragma once
/// \file manifest.hpp
/// QoR run manifest: one JSON document describing a whole gapflow run —
/// configuration, seed, per-stage QoR snapshots and metric deltas, the
/// gap-factor attribution, a diagnostics summary and the final result.
/// Written by `gapflow --qor-out FILE`, consumed by `gapreport` (show /
/// diff) and the CI QoR gate. Schema documented in docs/qor.md.
///
/// Byte-identity: the manifest deliberately records no wall-clock times
/// and no thread count. Results are thread-invariant by the determinism
/// contract (docs/parallelism.md), so two runs of the same configuration
/// at different --threads settings must produce byte-identical manifests
/// — that is what makes `gapreport diff` trustworthy in CI.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "qor/attribution.hpp"
#include "qor/snapshot.hpp"

namespace gap::qor {

/// Current manifest schema. Bump when a field changes meaning; gapreport
/// warns on mismatch but still diffs shared keys.
inline constexpr int kManifestSchemaVersion = 1;

/// One flow stage in the manifest.
struct ManifestStage {
  std::string name;
  std::string status;  ///< "ok" | "failed" | "skipped"
  std::size_t diagnostics = 0;
  /// Per-stage engine counter deltas, sorted by name (from StageReport).
  std::vector<std::pair<std::string, std::uint64_t>> metric_deltas;
  /// Present for stages that ran with QoR capture enabled.
  std::optional<QorSnapshot> qor;
};

/// Gap-factor section: top-K path attributions plus the composed score.
struct ManifestAttribution {
  std::vector<PathAttribution> paths;  ///< worst first
  GapScore score;
};

/// Everything `gapflow --qor-out` records about one run.
struct RunManifest {
  std::string design;
  RunContext context;  ///< methodology/corner facts (also echoed in JSON)
  std::uint64_t seed = 1;
  /// Free-form configuration echo ("threads" excluded by design), in
  /// insertion order.
  std::vector<std::pair<std::string, std::string>> config;

  std::vector<ManifestStage> stages;
  std::optional<ManifestAttribution> attribution;

  // Final flow result (zeros when the flow failed).
  bool ok = false;
  double freq_mhz = 0.0;
  double area_um2 = 0.0;
  int pipeline_registers = 0;
  int sizing_moves = 0;

  // Diagnostics summary across all stages.
  std::size_t notes = 0;
  std::size_t warnings = 0;
  std::size_t errors = 0;
};

/// Render the manifest as pretty-printed JSON (UTF-8, two-space indent,
/// '\n' line ends, trailing newline). Purely a function of the manifest,
/// so equal manifests produce byte-identical text.
[[nodiscard]] std::string write_json(const RunManifest& m);

}  // namespace gap::qor
