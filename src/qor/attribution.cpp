#include "qor/attribution.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "library/library.hpp"
#include "tech/technology.hpp"

namespace gap::qor {
namespace {

using netlist::NetDriver;
using netlist::Netlist;
using netlist::NetSink;

// --- Gap-score model constants (documented in docs/qor.md) ---

/// Optimal stage effort of a well-sized chain, in tau (f = g*h ~ 4).
constexpr double kIdealStageEffortTau = 4.0;
/// The custom re-pipelining target of section 4: ~7 FO4-lean stages with
/// a 5% clock tree, vs. the ASIC defaults.
constexpr int kCustomPipelineStages = 7;
constexpr double kCustomSkewFraction = 0.05;
/// Fractions of the wire / sizing buckets a custom team actually claws
/// back (placement can shorten wires, not delete them; sizing converges
/// on most but not all of the excess effort).
constexpr double kWireRecoverableFraction = 0.5;
constexpr double kSizingRecoverableFraction = 0.6;
/// Domino vs static-CMOS ratios when the library carries no domino
/// family to measure them from (the builders' own characterization).
constexpr double kDominoEffortRatio = 0.60;
constexpr double kDominoParasiticRatio = 0.50;

/// g and p of the domino counterpart relative to the static cell,
/// measured from the library when it has the family.
struct DominoRatios {
  double effort = kDominoEffortRatio;
  double parasitic = kDominoParasiticRatio;
};

DominoRatios domino_ratios(const Netlist& nl, library::Func func) {
  DominoRatios r;
  const auto& doms = nl.lib().cells_of(func, library::Family::kDomino);
  if (doms.empty()) return r;
  const library::Cell& d = nl.lib().cell(doms.front());
  const library::FuncTraits& t = library::traits(func);
  if (t.logical_effort > 0.0) r.effort = d.logical_effort / t.logical_effort;
  if (t.parasitic > 0.0) r.parasitic = d.parasitic / t.parasitic;
  return r;
}

}  // namespace

PathAttribution attribute_path(const Netlist& nl,
                               const sta::CriticalPath& path,
                               const sta::StaOptions& options) {
  GAP_EXPECTS(options.instance_delay_factors == nullptr);
  PathAttribution a;
  a.delay_tau = path.path_tau;
  a.gates = path.nodes.size();
  if (path.nodes.empty()) return a;

  // Walk the path accumulating *nominal* (pre-corner) pieces with the
  // exact formulas propagate() uses; the corner's uniform multiplier
  // falls out as the residual at the end.
  double nominal = 0.0;
  const auto add = [&nominal](double& bucket, double tau) {
    bucket += tau;
    nominal += tau;
  };

  // Launch: a PI-driven first gate pays the external driver's delay.
  const sta::PathNode& first = path.nodes.front();
  if (!nl.is_sequential(first.inst) && first.input_net.valid()) {
    const NetDriver& d = nl.net(first.input_net).driver;
    if (d.kind == NetDriver::Kind::kPrimaryInput) {
      const sta::WireModel wm = sta::wire_model(nl, first.input_net, options);
      const double pi_delay =
          wm.driver_load_units / nl.port(d.port).ext_drive;
      add(a.logic_depth_tau, pi_delay);
      a.sequential_overhead_tau += pi_delay;
    }
  }

  for (const sta::PathNode& node : path.nodes) {
    const library::Cell& c = nl.cell_of(node.inst);
    const double load =
        sta::wire_model(nl, nl.instance(node.inst).output, options)
            .driver_load_units;
    const double effort = load / nl.drive_of(node.inst);

    // Wire delay of the arrival-setting input net (placement's bucket).
    if (node.input_net.valid())
      add(a.placement_wire_tau,
          sta::wire_model(nl, node.input_net, options).delay_tau);

    if (nl.is_sequential(node.inst)) {
      // Launch flop: the whole arc (parasitic + effort + clk-to-Q) is
      // sequential overhead the microarchitecture pays every cycle.
      const double arc = c.parasitic + effort + c.clk_to_q_tau;
      add(a.logic_depth_tau, arc);
      a.sequential_overhead_tau += arc;
      continue;
    }

    const double arc = c.parasitic + effort;
    const library::FuncTraits& t = library::traits(c.func);
    // Static-CMOS equivalent at equal input capacitance: drive adjusted
    // so g_st * s' == g * s, hence effort scales by g_st / g.
    const double g_ratio =
        c.logical_effort > 0.0 ? t.logical_effort / c.logical_effort : 1.0;
    const double static_equiv = t.parasitic + g_ratio * effort;
    const double ideal = t.parasitic + kIdealStageEffortTau;

    add(a.logic_depth_tau, ideal);
    add(a.sizing_tau, static_equiv - ideal);
    add(a.logic_style_tau, arc - static_equiv);

    if (c.family == library::Family::kStatic) {
      const DominoRatios r = domino_ratios(nl, c.func);
      const double dom_equiv =
          r.parasitic * c.parasitic + r.effort * effort;
      a.domino_headroom_tau += arc - dom_equiv;
    }
  }

  // Capture: endpoint wire, plus setup for a register endpoint.
  add(a.placement_wire_tau,
      sta::wire_model(nl, path.endpoint_net, options).delay_tau);
  if (path.endpoint.kind == NetSink::Kind::kInstancePin &&
      nl.is_sequential(path.endpoint.inst)) {
    const double setup = nl.cell_of(path.endpoint.inst).setup_tau;
    add(a.logic_depth_tau, setup);
    a.sequential_overhead_tau += setup;
  }

  // The corner multiplies every piece uniformly; taking it as the
  // residual makes the five buckets an exact partition of delay_tau.
  a.process_margin_tau = a.delay_tau - nominal;
  return a;
}

GapScore gap_score(const PathAttribution& worst, const RunContext& ctx) {
  GapScore s;
  const double nominal = worst.delay_tau - worst.process_margin_tau;
  if (worst.delay_tau <= 0.0 || nominal <= 0.0) return s;
  const auto ratio_at_least_one = [](double num, double den) {
    return den > 0.0 ? std::max(1.0, num / den) : 1.0;
  };

  // Process: the signoff corner vs. selling speed-binned fast silicon
  // (section 8.3) — exactly the ratio core::decompose() measures,
  // because the min period scales linearly with the corner factor.
  s.process = ratio_at_least_one(ctx.corner_delay_factor,
                                 tech::corner_fast_bin().delay_factor);

  // Logic style: delay left on the table vs. a domino re-implementation
  // of the path's static gates (section 7). A run already using dynamic
  // logic has claimed it.
  if (!ctx.dynamic_logic)
    s.logic_style =
        ratio_at_least_one(nominal, nominal - worst.domino_headroom_tau);

  // Sizing / placement: a fraction of each bucket is realistically
  // recoverable (constants above).
  s.sizing = ratio_at_least_one(
      nominal,
      nominal - kSizingRecoverableFraction * std::max(0.0, worst.sizing_tau));
  s.placement_wire = ratio_at_least_one(
      nominal, nominal - kWireRecoverableFraction *
                             std::max(0.0, worst.placement_wire_tau));

  // Pipelining: re-partition the total combinational work into the
  // custom stage count with a custom clock tree (section 4). The total
  // work is estimated as worst-stage work x current depth, and the same
  // balance quality is assumed on both sides, so it cancels; at the
  // custom depth and skew the factor is exactly 1.
  const double seq = worst.sequential_overhead_tau;
  const double comb = nominal - seq;
  if (comb > 0.0 && ctx.pipeline_stages > 0) {
    const double period_now = nominal / (1.0 - ctx.skew_fraction);
    const double custom_stage_comb =
        comb * ctx.pipeline_stages / kCustomPipelineStages;
    const double period_custom =
        (custom_stage_comb + seq) / (1.0 - kCustomSkewFraction);
    s.pipelining = ratio_at_least_one(period_now, period_custom);
  }
  return s;
}

}  // namespace gap::qor
