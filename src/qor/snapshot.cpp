#include "qor/snapshot.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "netlist/checks.hpp"
#include "sizing/tilos.hpp"
#include "sta/compact_graph.hpp"
#include "sta/statistical.hpp"
#include "variation/variation.hpp"

namespace gap::qor {
namespace {

/// Levelize the netlist exactly as the timing kernels do (sequential and
/// PI-fed cones at level 0; a combinational gate one past its deepest
/// combinational driver) and summarize the wavefront shape. Computed
/// directly from the netlist so both capture() overloads — and both
/// graph layouts — report identical bytes.
void wave_profile(const netlist::Netlist& nl, QorSnapshot& s) {
  const std::vector<InstanceId> order = netlist::topo_order(nl);
  std::vector<int> level(nl.num_instances(), 0);
  int max_level = 0;
  for (InstanceId id : order) {
    if (nl.is_sequential(id)) continue;
    int lvl = 0;
    for (NetId in : nl.instance(id).inputs) {
      const netlist::NetDriver& d = nl.net(in).driver;
      if (d.kind != netlist::NetDriver::Kind::kInstance) continue;
      const int dl = nl.is_sequential(d.inst) ? 0 : level[d.inst.index()];
      lvl = std::max(lvl, dl + 1);
    }
    level[id.index()] = lvl;
    max_level = std::max(max_level, lvl);
  }
  std::vector<std::size_t> width(static_cast<std::size_t>(max_level) + 1, 0);
  for (int lvl : level) ++width[static_cast<std::size_t>(lvl)];
  s.wave_levels = width.size();
  std::size_t narrow = 0;
  for (std::size_t w : width) {
    s.wave_widest = std::max(s.wave_widest, w);
    if (w < sta::kWaveDispatchHint) ++narrow;
  }
  s.wave_narrow_fraction =
      static_cast<double>(narrow) / static_cast<double>(width.size());
}

/// Everything in a snapshot besides the arrival/slack analysis itself:
/// both capture() overloads feed their (identical, by the incremental
/// contract) timing result and histogram through this one body.
QorSnapshot assemble(const netlist::Netlist& nl, const SnapshotOptions& options,
                     const sta::TimingResult& timing,
                     sta::SlackHistogramData histogram) {
  QorSnapshot s;
  s.worst_path_tau = timing.worst_path_tau;
  s.min_period_tau = timing.min_period_tau;
  s.min_period_ps = timing.min_period_ps;
  s.min_period_fo4 = timing.min_period_fo4;
  s.critical_path_fo4 = timing.worst_path_tau / 5.0;
  s.critical_path_gates = timing.critical_path.size();
  s.endpoints = timing.num_endpoints;
  s.slack_histogram = std::move(histogram);

  s.area_um2 = nl.total_area_um2();
  for (NetId id : nl.all_nets()) s.total_wirelength_um += nl.net(id).length_um;
  // Each distinct net on the critical path counts once, even when the
  // path visits it through several gates.
  std::unordered_set<NetId> seen;
  for (InstanceId id : timing.critical_path) {
    const NetId out = nl.instance(id).output;
    if (seen.insert(out).second)
      s.critical_wirelength_um += nl.net(out).length_um;
  }

  sizing::SizingOptions sopt;
  sopt.sta = options.sta;
  sopt.continuous = options.continuous_sizing;
  s.sizing_headroom_tau =
      sizing::path_upsize_headroom_tau(nl, timing.critical_path, sopt);

  wave_profile(nl, s);

  if (options.mc_samples > 0) {
    sta::McStaOptions mc;
    mc.base = options.sta;
    mc.samples = options.mc_samples;
    mc.seed = options.mc_seed;
    mc.threads = options.mc_threads;
    const sta::McStaResult r = sta::monte_carlo_sta(nl, mc);
    s.mc_samples = options.mc_samples;
    s.mc_relative_spread = r.relative_spread();
    s.mc_mean_shift = r.mean_shift();
  }
  return s;
}

}  // namespace

QorSnapshot capture(const netlist::Netlist& nl,
                    const SnapshotOptions& options) {
  const sta::TimingResult timing = sta::analyze(nl, options.sta);
  return assemble(nl, options, timing,
                  sta::compute_slack_histogram(nl, options.sta,
                                               timing.min_period_tau,
                                               options.histogram_buckets));
}

QorSnapshot capture(sta::IncrementalTimer& timer,
                    const SnapshotOptions& options) {
  const sta::TimingResult timing = timer.timing();
  return assemble(timer.netlist(), options, timing,
                  sta::slack_histogram_from_slacks(
                      timer.slacks(timing.min_period_tau),
                      options.histogram_buckets));
}

}  // namespace gap::qor
