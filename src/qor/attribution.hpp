#pragma once
/// \file attribution.hpp
/// Gap-factor attribution: split a critical path's delay into the
/// paper's factor buckets and compose a per-run "gap score".
///
/// core::decompose() measures the paper's x18 decomposition by *re-running
/// the flow* with one methodology knob flipped at a time — accurate but
/// expensive (a full flow per factor). This module answers the same
/// question from a *single finished run*: walk the critical path with the
/// exact STA delay formulas and attribute every tau to one of five
/// buckets:
///
///   logic_depth     what an ideally sized static path of this depth
///                   would cost: per-gate parasitic + the optimal ~4 tau
///                   stage effort, plus the sequential overhead (clk-to-Q,
///                   capture setup, PI driver) — the microarchitecture
///                   floor that only pipelining (section 4) can move;
///   placement_wire  wire delay the path actually pays (section 5);
///   sizing          per-gate effort delay above the ideal stage effort —
///                   what TILOS-style sizing recovers (section 6);
///   logic_style     actual gate delay vs. its static-CMOS equivalent at
///                   equal input capacitance — zero for static gates,
///                   negative (a credit) for domino (section 7);
///   process_margin  the signoff corner's uniform multiplier, taken as
///                   the residual so the five buckets sum to the path
///                   delay *exactly* (section 8).
///
/// The buckets are an exact partition: logic_depth + placement_wire +
/// sizing + logic_style + process_margin == path delay to rounding.
/// Attribution assumes nominal signoff (no per-instance MC factors).

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace gap::qor {

/// Methodology facts attribution cannot read off the netlist. The core
/// flow fills this from its Methodology; gap::qor stays independent of
/// gap::core (layering: qor sits below core, beside sta/sizing).
struct RunContext {
  double skew_fraction = 0.10;
  int pipeline_stages = 1;
  double corner_delay_factor = 1.0;  ///< signoff corner in effect
  bool dynamic_logic = false;        ///< run already uses domino
  std::string methodology_name;
  std::string corner_name;
};

/// One critical path's delay, split into the factor buckets (tau).
struct PathAttribution {
  double delay_tau = 0.0;  ///< full path delay incl. capture setup

  // The five buckets; sum == delay_tau to rounding.
  double logic_depth_tau = 0.0;
  double placement_wire_tau = 0.0;
  double sizing_tau = 0.0;
  double logic_style_tau = 0.0;
  double process_margin_tau = 0.0;

  // Extra diagnostics (not part of the partition).
  /// Launch clk-to-Q (or PI driver) + capture setup, nominal.
  double sequential_overhead_tau = 0.0;
  /// Delay a domino re-implementation of the static gates would save,
  /// nominal (zero when the path is already dynamic).
  double domino_headroom_tau = 0.0;
  std::size_t gates = 0;

  [[nodiscard]] double bucket_sum() const {
    return logic_depth_tau + placement_wire_tau + sizing_tau +
           logic_style_tau + process_margin_tau;
  }
};

/// Attribute one extracted critical path. `options` must be the StaOptions
/// the path was extracted with (same corner, same wire model), with
/// instance_delay_factors null.
[[nodiscard]] PathAttribution attribute_path(const netlist::Netlist& nl,
                                             const sta::CriticalPath& path,
                                             const sta::StaOptions& options);

/// Per-run gap score: multiplicative speedup still on the table for each
/// factor, estimated from the worst path's buckets — the single-run
/// mirror of core::decompose()'s measured ratios. Each factor is >= 1
/// except where the run already applies the custom technique (then 1).
struct GapScore {
  double pipelining = 1.0;
  double placement_wire = 1.0;
  double sizing = 1.0;
  double logic_style = 1.0;
  double process = 1.0;

  /// Product of the factors — the per-run analogue of the paper's x18
  /// "multiplying the individual factors" composition.
  [[nodiscard]] double composed() const {
    return pipelining * placement_wire * sizing * logic_style * process;
  }
};

/// Compose a gap score from the worst path's attribution and the run's
/// methodology context. Model constants (ideal stage effort, custom
/// pipeline depth/skew, recoverable fractions) are documented in
/// docs/qor.md.
[[nodiscard]] GapScore gap_score(const PathAttribution& worst,
                                 const RunContext& ctx);

}  // namespace gap::qor
