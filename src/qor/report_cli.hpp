#pragma once
/// \file report_cli.hpp
/// Implementation of the `gapreport` command-line tool: render a QoR run
/// manifest (gap::qor::write_json) as text or CSV, and diff two manifests
/// with per-stage / per-factor deltas and a regression threshold for CI
/// gating. Lives in the library (not tools/gapreport.cpp) so tests can
/// drive it in-process with captured streams.
///
///   gapreport show FILE [--csv]
///   gapreport diff BASE CURRENT [--threshold F] [--strict]
///
/// Exit codes follow gapflow's conventions:
///   0  success; for diff: no *regression* (differences alone are fine)
///   1  regression past the threshold, --strict only
///   2  unknown flag or command
///   3  flag value malformed
///   5  file unreadable or not a manifest

#include <ostream>

namespace gap::qor {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRegression = 1;
inline constexpr int kExitUnknownFlag = 2;
inline constexpr int kExitBadValue = 3;
inline constexpr int kExitIo = 5;

/// Default relative-increase threshold for `gapreport diff`.
inline constexpr double kDefaultRegressionThreshold = 0.05;

/// Run the tool. `argv` excludes the program name (pass argc-1/argv+1
/// from main). Human output goes to `out`, errors to `err`.
int run_gapreport(int argc, const char* const* argv, std::ostream& out,
                  std::ostream& err);

}  // namespace gap::qor
