#include "qor/report_cli.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "qor/manifest.hpp"

namespace gap::qor {
namespace {

using common::json::Value;

constexpr const char* kUsage =
    "usage: gapreport <command> [options]\n"
    "\n"
    "commands:\n"
    "  show FILE [--csv]            render a QoR run manifest\n"
    "  diff BASE CURRENT [options]  compare two manifests\n"
    "\n"
    "diff options:\n"
    "  --threshold F   relative increase counting as a regression "
    "(default 0.05)\n"
    "  --strict        exit 1 when a regression is found\n"
    "\n"
    "exit codes: 0 ok / no regression, 1 regression (--strict), 2 unknown\n"
    "flag, 3 bad value, 5 unreadable or invalid manifest\n";

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Load and validate one manifest file.
int load(const std::string& path, Value& out, std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "gapreport: cannot open " << path << "\n";
    return kExitIo;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = Value::parse(text.str());
  if (!parsed || !parsed->is_object()) {
    err << "gapreport: " << path << " is not valid JSON\n";
    return kExitIo;
  }
  if (parsed->member_string("tool", "") != "gapflow") {
    err << "gapreport: " << path << " is not a gapflow QoR manifest\n";
    return kExitIo;
  }
  const int ver = static_cast<int>(parsed->member_number("schema_version", 0));
  if (ver != kManifestSchemaVersion)
    err << "gapreport: warning: " << path << " has schema_version " << ver
        << " (tool expects " << kManifestSchemaVersion
        << "); diffing shared keys only\n";
  out = std::move(*parsed);
  return kExitOk;
}

/// The scalar QoR keys rendered and diffed per stage, in display order.
constexpr const char* kStageKeys[] = {
    "min_period_tau",       "min_period_ps",
    "min_period_fo4",       "worst_path_tau",
    "critical_path_fo4",    "critical_path_gates",
    "area_um2",             "total_wirelength_um",
    "critical_wirelength_um", "sizing_headroom_tau",
};

constexpr const char* kScoreKeys[] = {
    "pipelining", "placement_wire", "sizing",
    "logic_style", "process", "composed",
};

constexpr const char* kBucketKeys[] = {
    "logic_depth_tau", "placement_wire_tau", "sizing_tau",
    "logic_style_tau", "process_margin_tau",
};

const Value* stage_list(const Value& m) { return m.find("stages"); }

void show_text(const Value& m, std::ostream& out) {
  out << "design       " << m.member_string("design", "?") << "\n";
  out << "methodology  " << m.member_string("methodology", "?") << "\n";
  if (const Value* c = m.find("corner"))
    out << "corner       " << c->member_string("name", "?") << " (x"
        << fmt(c->member_number("delay_factor", 1.0)) << ")\n";
  out << "seed         " << fmt(m.member_number("seed", 0)) << "\n";

  if (const Value* stages = stage_list(m); stages && stages->is_array()) {
    out << "\n  stage     status   period[tau]   fo4/cycle   area[um2]   "
           "wire[um]   headroom[tau]\n";
    for (const Value& s : stages->array) {
      char line[160];
      const Value* q = s.find("qor");
      if (q != nullptr) {
        std::snprintf(line, sizeof(line),
                      "  %-9s %-8s %11.2f %11.2f %11.1f %10.1f %15.4f",
                      s.member_string("name", "?").c_str(),
                      s.member_string("status", "?").c_str(),
                      q->member_number("min_period_tau", 0),
                      q->member_number("min_period_fo4", 0),
                      q->member_number("area_um2", 0),
                      q->member_number("total_wirelength_um", 0),
                      q->member_number("sizing_headroom_tau", 0));
      } else {
        std::snprintf(line, sizeof(line), "  %-9s %-8s",
                      s.member_string("name", "?").c_str(),
                      s.member_string("status", "?").c_str());
      }
      out << line << "\n";
    }
  }

  if (const Value* attr = m.find("attribution")) {
    if (const Value* paths = attr->find("paths");
        paths && paths->is_array() && !paths->array.empty()) {
      const Value& worst = paths->array.front();
      out << "\nworst path  " << fmt(worst.member_number("delay_tau", 0))
          << " tau over " << fmt(worst.member_number("gates", 0))
          << " gates\n";
      if (const Value* b = worst.find("buckets")) {
        const double total = worst.member_number("delay_tau", 0);
        for (const char* key : kBucketKeys) {
          const double v = b->member_number(key, 0);
          char line[96];
          std::snprintf(line, sizeof(line), "  %-20s %10.3f tau  %5.1f%%",
                        key, v, total > 0 ? 100.0 * v / total : 0.0);
          out << line << "\n";
        }
      }
    }
    if (const Value* score = attr->find("gap_score")) {
      out << "\ngap score (speedup still on the table)\n";
      for (const char* key : kScoreKeys) {
        char line[64];
        std::snprintf(line, sizeof(line), "  %-15s x%.3f", key,
                      score->member_number(key, 1.0));
        out << line << "\n";
      }
    }
  }

  if (const Value* r = m.find("result")) {
    out << "\nresult       "
        << (r->find("ok") && r->find("ok")->boolean ? "ok" : "FAILED")
        << "  " << fmt(r->member_number("frequency_mhz", 0)) << " MHz  "
        << fmt(r->member_number("area_um2", 0)) << " um2\n";
  }
}

void show_csv(const Value& m, std::ostream& out) {
  out << "section,stage,key,value\n";
  out << "run,," << "design," << m.member_string("design", "?") << "\n";
  out << "run,," << "methodology," << m.member_string("methodology", "?")
      << "\n";
  if (const Value* c = m.find("corner"))
    out << "run,,corner," << c->member_string("name", "?") << "\n";
  if (const Value* stages = stage_list(m); stages && stages->is_array()) {
    for (const Value& s : stages->array) {
      const std::string name = s.member_string("name", "?");
      out << "stage," << name << ",status," << s.member_string("status", "?")
          << "\n";
      if (const Value* q = s.find("qor"))
        for (const char* key : kStageKeys)
          if (q->find(key) != nullptr)
            out << "stage," << name << "," << key << ","
                << fmt(q->member_number(key, 0)) << "\n";
    }
  }
  if (const Value* attr = m.find("attribution"))
    if (const Value* score = attr->find("gap_score"))
      for (const char* key : kScoreKeys)
        out << "gap_score,," << key << ","
            << fmt(score->member_number(key, 1.0)) << "\n";
  if (const Value* r = m.find("result")) {
    out << "result,,frequency_mhz," << fmt(r->member_number("frequency_mhz", 0))
        << "\n";
    out << "result,,area_um2," << fmt(r->member_number("area_um2", 0)) << "\n";
  }
}

/// One numeric difference between the two manifests.
struct Delta {
  std::string label;
  double base = 0.0;
  double current = 0.0;
  bool regression = false;  ///< counts toward the --strict exit code
};

/// Relative increase of `cur` over `base` (0 when base is 0).
double rel_increase(double base, double cur) {
  return base != 0.0 ? (cur - base) / std::fabs(base) : 0.0;
}

void diff_number(std::vector<Delta>& out, const std::string& label,
                 const Value* base, const Value* cur, const char* key,
                 double threshold, bool higher_is_worse) {
  if (base == nullptr || cur == nullptr) return;
  const Value* b = base->find(key);
  const Value* c = cur->find(key);
  if (b == nullptr || c == nullptr || !b->is_number() || !c->is_number())
    return;
  if (b->num == c->num) return;
  Delta d;
  d.label = label + "." + key;
  d.base = b->num;
  d.current = c->num;
  d.regression = higher_is_worse && rel_increase(b->num, c->num) > threshold;
  out.push_back(d);
}

const Value* stage_by_name(const Value& m, const std::string& name) {
  const Value* stages = stage_list(m);
  if (stages == nullptr || !stages->is_array()) return nullptr;
  for (const Value& s : stages->array)
    if (s.member_string("name", "") == name) return &s;
  return nullptr;
}

int run_diff(const Value& base, const Value& cur, double threshold,
             bool strict, std::ostream& out) {
  std::vector<Delta> deltas;

  // Context changes are reported but never count as regressions.
  for (const char* key : {"design", "methodology", "seed"}) {
    const std::string b = base.member_string(key, fmt(base.member_number(key, 0)));
    const std::string c = cur.member_string(key, fmt(cur.member_number(key, 0)));
    if (b != c) out << "context " << key << ": " << b << " -> " << c << "\n";
  }

  // Per-stage QoR: walk the union in base order, then current-only.
  std::vector<std::string> names;
  for (const Value* m : {&base, &cur}) {
    const Value* stages = stage_list(*m);
    if (stages == nullptr || !stages->is_array()) continue;
    for (const Value& s : stages->array) {
      const std::string n = s.member_string("name", "");
      bool seen = false;
      for (const std::string& have : names) seen = seen || have == n;
      if (!seen) names.push_back(n);
    }
  }
  for (const std::string& name : names) {
    const Value* sb = stage_by_name(base, name);
    const Value* sc = stage_by_name(cur, name);
    if (sb == nullptr || sc == nullptr) {
      out << "stage " << name << ": only in "
          << (sb != nullptr ? "base" : "current") << "\n";
      continue;
    }
    const Value* qb = sb->find("qor");
    const Value* qc = sc->find("qor");
    for (const char* key : kStageKeys) {
      // Timing and wirelength regress upward; headroom growth also means
      // the optimizer left gain behind, so it is flagged too.
      const bool worse_up = std::string(key) != "critical_path_gates";
      diff_number(deltas, "stage." + name, qb, qc, key, threshold, worse_up);
    }
  }

  const Value* ab = base.find("attribution");
  const Value* ac = cur.find("attribution");
  if (ab != nullptr && ac != nullptr)
    for (const char* key : kScoreKeys)
      diff_number(deltas, "gap_score", ab->find("gap_score"),
                  ac->find("gap_score"), key, threshold, true);

  for (const char* key : {"frequency_mhz", "area_um2"})
    diff_number(deltas, "result", base.find("result"), cur.find("result"), key,
                threshold, std::string(key) == "area_um2");

  if (deltas.empty()) {
    out << "no differences\n";
    return kExitOk;
  }
  bool regressed = false;
  for (const Delta& d : deltas) {
    const double rel = rel_increase(d.base, d.current);
    char line[160];
    std::snprintf(line, sizeof(line), "%-40s %12.6g -> %-12.6g (%+.2f%%)%s",
                  d.label.c_str(), d.base, d.current, 100.0 * rel,
                  d.regression ? "  REGRESSION" : "");
    out << line << "\n";
    regressed = regressed || d.regression;
  }
  out << deltas.size() << " difference(s)"
      << (regressed ? ", regression past threshold" : "") << "\n";
  return regressed && strict ? kExitRegression : kExitOk;
}

}  // namespace

int run_gapreport(int argc, const char* const* argv, std::ostream& out,
                  std::ostream& err) {
  std::vector<std::string> args(argv, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    out << kUsage;
    return kExitOk;
  }
  const std::string& cmd = args[0];

  if (cmd == "show") {
    std::string file;
    bool csv = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--csv") {
        csv = true;
      } else if (args[i].rfind("--", 0) == 0) {
        err << "gapreport: unknown flag " << args[i] << "\n";
        return kExitUnknownFlag;
      } else if (file.empty()) {
        file = args[i];
      } else {
        err << "gapreport: show takes one file\n";
        return kExitUnknownFlag;
      }
    }
    if (file.empty()) {
      err << "gapreport: show needs a manifest file\n" << kUsage;
      return kExitUnknownFlag;
    }
    Value m;
    if (const int rc = load(file, m, err); rc != kExitOk) return rc;
    if (csv)
      show_csv(m, out);
    else
      show_text(m, out);
    return kExitOk;
  }

  if (cmd == "diff") {
    std::vector<std::string> files;
    double threshold = kDefaultRegressionThreshold;
    bool strict = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--strict") {
        strict = true;
      } else if (args[i] == "--threshold") {
        if (i + 1 >= args.size()) {
          err << "gapreport: --threshold needs a value\n";
          return kExitBadValue;
        }
        char* end = nullptr;
        threshold = std::strtod(args[++i].c_str(), &end);
        if (end == args[i].c_str() || *end != '\0' || threshold < 0.0) {
          err << "gapreport: bad --threshold value '" << args[i] << "'\n";
          return kExitBadValue;
        }
      } else if (args[i].rfind("--", 0) == 0) {
        err << "gapreport: unknown flag " << args[i] << "\n";
        return kExitUnknownFlag;
      } else {
        files.push_back(args[i]);
      }
    }
    if (files.size() != 2) {
      err << "gapreport: diff needs BASE and CURRENT\n" << kUsage;
      return kExitUnknownFlag;
    }
    Value base;
    Value cur;
    if (const int rc = load(files[0], base, err); rc != kExitOk) return rc;
    if (const int rc = load(files[1], cur, err); rc != kExitOk) return rc;
    return run_diff(base, cur, threshold, strict, out);
  }

  err << "gapreport: unknown command '" << cmd << "'\n" << kUsage;
  return kExitUnknownFlag;
}

}  // namespace gap::qor
