#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/diagnostics.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/flow.hpp"
#include "core/methodology.hpp"
#include "designs/registry.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "lint/report.hpp"
#include "obs/expose.hpp"
#include "qor/snapshot.hpp"
#include "serve/journal.hpp"
#include "sta/report.hpp"

namespace gap::serve {

namespace json = common::json;
using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

[[nodiscard]] bool valid_session_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Run untrusted-path work with contract failures captured into a Status
/// instead of aborting the process.
template <typename Fn>
[[nodiscard]] Status run_guarded(Fn&& fn) {
  try {
    const ScopedContractCapture guard;
    fn();
    return {};
  } catch (const ContractViolation& v) {
    return Status::error(ErrorCode::kContract, v.what(), {}, "serve");
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kInternal, e.what(), {}, "serve");
  }
}

/// Re-emit a (possibly pretty-printed) renderer output as one compact
/// line, so every reply stays line-delimited.
[[nodiscard]] Result<std::string> compact(const std::string& text) {
  auto v = json::Value::parse_checked(text);
  if (!v.ok())
    return Status::error(ErrorCode::kInternal,
                         "renderer emitted unparseable JSON: " +
                             v.status().message(),
                         {}, "serve");
  return v->dump();
}

[[nodiscard]] std::string bool_json(bool b) { return b ? "true" : "false"; }

/// Optional positive-integer parameter with range checking.
[[nodiscard]] Result<int> int_param(const json::Value& frame, const char* key,
                                    int def, int lo, int hi) {
  const json::Value* f = frame.find(key);
  if (f == nullptr) return def;
  if (!f->is_number() || f->num != std::floor(f->num) || f->num < lo ||
      f->num > hi)
    return Status::error(ErrorCode::kInvalidValue,
                         std::string("\"") + key + "\" must be an integer in [" +
                             std::to_string(lo) + ", " + std::to_string(hi) +
                             "]",
                         {}, "serve");
  return static_cast<int>(f->num);
}

[[nodiscard]] std::string names_list(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

/// One resident design. The Flow owns the cell libraries the netlist
/// references, so it must outlive both the netlist and the timer.
struct Server::Session {
  std::string name;
  std::string design;
  std::string methodology;
  std::string tech;
  std::string corner;  ///< empty = the methodology's default corner
  core::Methodology meth;

  std::unique_ptr<core::Flow> flow;
  std::shared_ptr<netlist::Netlist> nl;
  std::unique_ptr<sta::IncrementalTimer> timer;

  /// Dataflow lattice for `lint` mode=dataflow, built lazily on first
  /// use and kept in sync per edit kind: an input rewire re-evaluates
  /// only the edited instance's forward cone, every other edit is a pure
  /// version resync (clock *phases* are not editable over the wire — the
  /// set_clock edit moves the STA clock constraint, not a phase).
  std::unique_ptr<lint::DataflowEngine> dataflow;

  Journal journal;  ///< !is_open() when journaling is disabled
  std::uint64_t seq = 0;
  std::vector<sta::Edit> undo;
  bool degraded = false;
  bool recovered = false;
  std::uint64_t edits_applied = 0;  ///< through this process (not replay)
  std::uint64_t degradations = 0;   ///< 0 or 1 today; counted for stats
  common::DiagnosticEngine diags;

  [[nodiscard]] std::string header_record() const {
    std::string rec = "{\"gapd_journal\":1,\"session\":\"";
    rec += json::escape(name);
    rec += "\",\"design\":\"";
    rec += json::escape(design);
    rec += "\",\"methodology\":\"";
    rec += json::escape(methodology);
    rec += "\",\"tech\":\"";
    rec += json::escape(tech);
    rec += "\",\"corner\":";
    if (corner.empty()) {
      rec += "null";
    } else {
      rec += '"';
      rec += json::escape(corner);
      rec += '"';
    }
    rec += '}';
    return rec;
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), flight_(options_.flight_capacity) {}
Server::~Server() = default;

void Server::bump(std::uint64_t ServerCounters::* field, const char* metric,
                  std::uint64_t n) {
  counters_.*field += n;
  common::metrics().counter(metric).add(n);
}

void Server::flight_event(obs::FlightEventKind kind, std::uint32_t code,
                          std::uint64_t value, std::string_view detail) {
  flight_.record(kind, cur_req_id_, code, value, detail,
                 common::tracer().now_us());
}

void Server::write_expose() const {
  if (options_.expose_out.empty()) return;
  // Best-effort: a failed snapshot write must never fail a request (the
  // journal, not the exposition file, is the durability story).
  (void)obs::write_file_atomic(options_.expose_out,
                               obs::expose_text(common::metrics()));
}

std::vector<std::string> Server::dump_flight(const std::string& session) {
  std::vector<std::string> written;
  if (options_.journal_dir.empty()) return written;
  // A named session is trusted (degrade() calls this before the session
  // is registered during recover()); the empty form walks the residents.
  std::vector<std::string> names;
  if (!session.empty()) {
    names.push_back(session);
  } else {
    for (const auto& [name, s] : sessions_) {
      (void)s;
      names.push_back(name);
    }
  }
  const std::string dump = obs::flight_json(flight_);
  for (const std::string& name : names) {
    const std::string path =
        options_.journal_dir + "/" + name + ".flight.json";
    if (obs::write_file_atomic(path, dump)) written.push_back(path);
  }
  return written;
}

std::string Server::journal_path(const std::string& session) const {
  return options_.journal_dir + "/" + session + ".gapj";
}

bool Server::deadline_expired(const Request& req, double t0_us) const {
  double budget = options_.default_deadline_us;
  if (const json::Value* d = req.frame.find("deadline_us"))
    budget = d->number_or(budget);
  if (budget <= 0.0) return false;
  return common::tracer().now_us() - t0_us > budget;
}

void Server::degrade(Session& s, const std::string& why) {
  if (s.degraded) return;
  s.degraded = true;
  ++s.degradations;
  bump(&ServerCounters::degraded, "serve.degraded");
  s.diags.report(common::Severity::kWarning, ErrorCode::kContract,
                 "session degraded to from-scratch analysis: " + why, {},
                 "serve");
  flight_event(obs::FlightEventKind::kDegraded, 0, s.seq, s.name);
  // Whatever cached state the incremental engine holds is suspect; make
  // the timer rebuild if it is ever consulted again.
  const Status st = run_guarded([&] { s.timer->invalidate_all(); });
  (void)st;  // a timer too broken to invalidate stays bypassed anyway
  // Leave evidence next to the journal: the flight ring as of the moment
  // things went wrong (docs/observability.md).
  (void)dump_flight(s.name);
}

Server::Session* Server::find_session(const Request& req,
                                      std::string& error_out) {
  const json::Value* name = req.frame.find("session");
  if (name == nullptr || !name->is_string()) {
    bump(&ServerCounters::errors, "serve.errors");
    error_out = error_reply(req.id_json, ReplyCode::kMissingValue,
                            "request needs a \"session\" string");
    return nullptr;
  }
  auto it = sessions_.find(name->str);
  if (it == sessions_.end()) {
    bump(&ServerCounters::errors, "serve.errors");
    error_out = error_reply(req.id_json, ReplyCode::kUnknownName,
                            "no session named '" + name->str + "'");
    return nullptr;
  }
  return it->second.get();
}

// --- load / recover ------------------------------------------------------

namespace {

struct LoadInfo {
  double freq_mhz = 0.0;
  double area_um2 = 0.0;
  int registers = 0;
};

/// Build a session from validated names: resolve methodology/tech/corner,
/// run the flow, stand up the resident timer. Pure function of its
/// arguments plus the deterministic flow, so a recover() rebuild lands on
/// the same state the original load produced.
[[nodiscard]] Result<std::unique_ptr<Server::Session>> build_session(
    const std::string& name, const std::string& design,
    const std::string& methodology, const std::string& tech,
    const std::string& corner, int threads, sta::GraphKind graph,
    std::size_t max_diags, LoadInfo* info) {
  auto s = std::make_unique<Server::Session>();
  s->name = name;
  s->design = design;
  s->methodology = methodology;
  s->tech = tech;
  s->corner = corner;
  s->diags.set_capacity(max_diags);

  auto m = core::methodology_by_name(methodology);
  if (!m)
    return Status::error(ErrorCode::kUnknownName,
                         "unknown methodology '" + methodology +
                             "' (one of: " +
                             names_list(core::methodology_names()) + ")",
                         {}, "serve");
  auto t = tech::technology_by_name(tech);
  if (!t)
    return Status::error(ErrorCode::kUnknownName,
                         "unknown technology '" + tech + "' (one of: " +
                             names_list(tech::technology_names()) + ")",
                         {}, "serve");
  if (!corner.empty()) {
    auto c = tech::corner_by_name(corner);
    if (!c)
      return Status::error(ErrorCode::kUnknownName,
                           "unknown corner '" + corner + "'", {}, "serve");
    m->corner = *c;
  }
  const auto known_designs = designs::design_names();
  if (std::find(known_designs.begin(), known_designs.end(), design) ==
      known_designs.end())
    return Status::error(ErrorCode::kUnknownName,
                         "unknown design '" + design + "' (one of: " +
                             names_list(known_designs) + ")",
                         {}, "serve");
  s->meth = *m;

  core::FlowResult result;
  const Status st = run_guarded([&] {
    const logic::Aig aig = designs::make_design(design, m->datapath);
    s->flow = std::make_unique<core::Flow>(*t);
    result = s->flow->run(aig, *m);
  });
  if (!st.ok()) return st;
  if (!result.ok() || !result.nl) {
    std::string why = "flow failed";
    if (const core::StageReport* failed = result.report.failed_stage()) {
      why = "flow stage '" + failed->name + "' failed";
      if (!failed->diagnostics.empty())
        why += ": " + failed->diagnostics.front().message;
    }
    return Status::error(ErrorCode::kInternal, why, {}, "serve");
  }
  s->nl = result.nl;
  const Status timer_st = run_guarded([&] {
    sta::StaOptions sta_opt = core::signoff_sta_options(*m);
    sta_opt.graph = graph;
    s->timer =
        std::make_unique<sta::IncrementalTimer>(*s->nl, sta_opt, threads);
    s->timer->flush();
  });
  if (!timer_st.ok()) return timer_st;
  if (info != nullptr) {
    info->freq_mhz = result.freq_mhz;
    info->area_um2 = result.area_um2;
    info->registers = result.pipeline_registers;
  }
  return s;
}

}  // namespace

std::string Server::cmd_load(const Request& req, double t0_us) {
  const json::Value* name = req.frame.find("session");
  if (name == nullptr || !name->is_string() ||
      !valid_session_name(name->str)) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(
        req.id_json, ReplyCode::kInvalidValue,
        "load needs a \"session\" name matching [A-Za-z0-9_-]{1,64}");
  }
  if (sessions_.count(name->str) != 0) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kDuplicate,
                       "session '" + name->str + "' already exists");
  }
  if (sessions_.size() >= options_.max_sessions) {
    bump(&ServerCounters::errors, "serve.errors");
    bump(&ServerCounters::overloaded, "serve.overloaded");
    flight_event(obs::FlightEventKind::kOverloaded, 0, sessions_.size(),
                 "load");
    return error_reply(req.id_json, ReplyCode::kOverloaded,
                       "session limit (" +
                           std::to_string(options_.max_sessions) +
                           ") reached");
  }
  const json::Value* design = req.frame.find("design");
  if (design == nullptr || !design->is_string()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kMissingValue,
                       "load needs a \"design\" string");
  }
  const std::string methodology =
      req.frame.member_string("methodology", "typical");
  const std::string tech = req.frame.member_string("tech", "asic025");
  const std::string corner = req.frame.member_string("corner", "");

  LoadInfo info;
  auto built =
      build_session(name->str, design->str, methodology, tech, corner,
                    options_.threads, options_.graph,
                    options_.max_session_diags, &info);
  if (!built.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, reply_code(built.status().code()),
                       built.status().message());
  }
  if (deadline_expired(req, t0_us)) {
    // The work is done but the client's budget expired: discard the
    // session so a retry sees a clean slate, and say what happened.
    bump(&ServerCounters::errors, "serve.errors");
    bump(&ServerCounters::deadline_exceeded, "serve.deadline_exceeded");
    flight_event(obs::FlightEventKind::kDeadline, 0, 0, "load");
    return error_reply(req.id_json, ReplyCode::kDeadline,
                       "load exceeded the request deadline");
  }
  std::unique_ptr<Session> s = std::move(built).value();
  if (!options_.journal_dir.empty()) {
    auto journal = Journal::open(journal_path(s->name));
    Status append_st;
    if (journal.ok()) {
      s->journal = std::move(journal).value();
      append_st = s->journal.append(s->header_record());
    } else {
      append_st = journal.status();
    }
    if (!append_st.ok()) {
      bump(&ServerCounters::errors, "serve.errors");
      return error_reply(req.id_json, ReplyCode::kIo, append_st.message());
    }
  }

  std::string result = "{\"session\":\"" + json::escape(s->name) +
                       "\",\"design\":\"" + json::escape(s->design) +
                       "\",\"methodology\":\"" + json::escape(s->methodology) +
                       "\",\"tech\":\"" + json::escape(s->tech) +
                       "\",\"corner\":";
  result += s->corner.empty() ? std::string("null")
                              : "\"" + json::escape(s->corner) + "\"";
  result += ",\"freq_mhz\":" + json::number(info.freq_mhz);
  result += ",\"area_um2\":" + json::number(info.area_um2);
  result += ",\"instances\":" + std::to_string(s->nl->num_instances());
  result += ",\"registers\":" + std::to_string(info.registers);
  result += '}';
  const std::string session_name = s->name;
  sessions_[session_name] = std::move(s);
  return ok_reply(req.id_json, result);
}

Status Server::recover() {
  if (options_.journal_dir.empty()) return {};
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> paths;
  for (fs::directory_iterator it(options_.journal_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".gapj") paths.push_back(it->path().string());
  }
  if (ec)
    return Status::error(ErrorCode::kIo,
                         "cannot scan journal directory '" +
                             options_.journal_dir + "': " + ec.message(),
                         {}, "serve");
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    if (sessions_.size() >= options_.max_sessions) break;
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    const Replay replay = replay_journal(buf.str());
    if (replay.records.empty()) continue;  // torn header: never acknowledged

    const json::Value& header = replay.records.front();
    if (header.member_number("gapd_journal", 0) != 1.0) continue;
    const std::string name = header.member_string("session", "");
    if (!valid_session_name(name) || sessions_.count(name) != 0) continue;

    auto built = build_session(
        name, header.member_string("design", ""),
        header.member_string("methodology", "typical"),
        header.member_string("tech", "asic025"),
        header.member_string("corner", ""), options_.threads,
        options_.graph, options_.max_session_diags, nullptr);
    if (!built.ok()) continue;  // names no longer resolve; leave the file
    std::unique_ptr<Session> s = std::move(built).value();
    s->recovered = true;

    // Re-apply the acknowledged edits in journal order. Any divergence
    // (bad record shape, rejected edit, seq gap) means the journal no
    // longer matches the engine: stop at the consistent prefix and serve
    // the session degraded rather than guess.
    bool diverged = false;
    for (std::size_t i = 1; i < replay.records.size() && !diverged; ++i) {
      const json::Value& rec = replay.records[i];
      const json::Value* edit_json = rec.find("edit");
      const double rec_seq = rec.member_number("seq", -1.0);
      if (edit_json == nullptr ||
          rec_seq != static_cast<double>(s->seq + 1)) {
        diverged = true;
        break;
      }
      auto edit = edit_from_json(*edit_json);
      if (!edit.ok()) {
        diverged = true;
        break;
      }
      Result<sta::Edit> inverse = sta::Edit{};
      const Status st = run_guarded(
          [&] { inverse = s->timer->apply_undoable(edit.value()); });
      if (!st.ok() || !inverse.ok()) {
        diverged = true;
        break;
      }
      ++s->seq;
      bump(&ServerCounters::recovered_edits, "serve.recovered_edits");
      const json::Value* undo_flag = rec.find("undo");
      if (undo_flag != nullptr && undo_flag->boolean) {
        if (!s->undo.empty()) s->undo.pop_back();
      } else {
        s->undo.push_back(std::move(inverse).value());
        if (s->undo.size() > options_.max_undo_depth)
          s->undo.erase(s->undo.begin());
      }
    }
    if (diverged || replay.halt == ReplayHalt::kCorrupt)
      degrade(*s, diverged ? "journal diverged from the timing engine"
                           : "journal corrupt: " + replay.detail);

    auto journal = Journal::open(path);
    if (journal.ok()) s->journal = std::move(journal).value();
    bump(&ServerCounters::recovered_sessions, "serve.recovered_sessions");
    flight_event(obs::FlightEventKind::kRecovered, 0, s->seq, name);
    sessions_[name] = std::move(s);
  }
  return {};
}

// --- edits ---------------------------------------------------------------

std::string Server::cmd_edit(const Request& req, bool undo, double t0_us) {
  std::string err;
  Session* s = find_session(req, err);
  if (s == nullptr) return err;

  sta::Edit edit;
  if (undo) {
    if (s->undo.empty()) {
      bump(&ServerCounters::errors, "serve.errors");
      return error_reply(req.id_json, ReplyCode::kInvalidValue,
                         "nothing to undo");
    }
    edit = s->undo.back();
  } else {
    const json::Value* edit_json = req.frame.find("edit");
    if (edit_json == nullptr) {
      bump(&ServerCounters::errors, "serve.errors");
      return error_reply(req.id_json, ReplyCode::kMissingValue,
                         "edit needs an \"edit\" object");
    }
    auto parsed = edit_from_json(*edit_json);
    if (!parsed.ok()) {
      bump(&ServerCounters::errors, "serve.errors");
      bump(&ServerCounters::edits_rejected, "serve.edits_rejected");
      flight_event(obs::FlightEventKind::kEditRejected,
                   static_cast<std::uint32_t>(parsed.status().code()),
                   s->seq, s->name);
      s->diags.report(parsed.status());
      return error_reply(req.id_json, reply_code(parsed.status().code()),
                         parsed.status().message());
    }
    edit = std::move(parsed).value();
  }

  // 1. Validate against the current netlist (no mutation).
  Status check_st;
  const Status guard_st =
      run_guarded([&] { check_st = s->timer->check(edit); });
  if (!guard_st.ok()) {
    degrade(*s, guard_st.message());
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, reply_code(guard_st.code()),
                       guard_st.message());
  }
  if (!check_st.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    bump(&ServerCounters::edits_rejected, "serve.edits_rejected");
    flight_event(obs::FlightEventKind::kEditRejected,
                 static_cast<std::uint32_t>(check_st.code()), s->seq,
                 s->name);
    s->diags.report(check_st);
    return error_reply(req.id_json, reply_code(check_st.code()),
                       check_st.message(), check_st.loc());
  }

  // 2. Watchdog checks, before any side effect.
  if (deadline_expired(req, t0_us)) {
    bump(&ServerCounters::errors, "serve.errors");
    bump(&ServerCounters::deadline_exceeded, "serve.deadline_exceeded");
    flight_event(obs::FlightEventKind::kDeadline, 0, s->seq, "edit");
    return error_reply(req.id_json, ReplyCode::kDeadline,
                       "deadline expired before the edit was committed");
  }
  if (s->journal.is_open() && s->seq >= options_.max_journal_edits) {
    bump(&ServerCounters::errors, "serve.errors");
    bump(&ServerCounters::overloaded, "serve.overloaded");
    bump(&ServerCounters::journal_overflow, "serve.journal_overflow");
    flight_event(obs::FlightEventKind::kOverloaded, 0, s->seq, s->name);
    return error_reply(req.id_json, ReplyCode::kOverloaded,
                       "session journal is full (" +
                           std::to_string(options_.max_journal_edits) +
                           " edits)");
  }

  // 3. Commit to the journal first (write-ahead): a crash after this
  // point replays the edit; a failure here leaves state untouched.
  if (s->journal.is_open()) {
    // Undo records are flagged so replay maintains the same undo stack a
    // live server would have (pop instead of push).
    const std::string rec = "{\"seq\":" + std::to_string(s->seq + 1) +
                            ",\"edit\":" + edit_to_json(edit) +
                            (undo ? ",\"undo\":true}" : "}");
    const Status jst = s->journal.append(rec);
    if (!jst.ok()) {
      bump(&ServerCounters::errors, "serve.errors");
      s->diags.report(jst);
      return error_reply(req.id_json, ReplyCode::kIo, jst.message());
    }
    flight_event(obs::FlightEventKind::kJournalFsync, 0,
                 s->journal.bytes_appended(), s->name);
  }
  ++s->seq;

  // 4. Apply. check() passed, so a failure here is an engine fault:
  // degrade the session (queries fall back to from-scratch analysis).
  Result<sta::Edit> inverse = sta::Edit{};
  const Status apply_st =
      run_guarded([&] { inverse = s->timer->apply_undoable(edit); });
  if (!apply_st.ok() || !inverse.ok()) {
    const Status& why = apply_st.ok() ? inverse.status() : apply_st;
    degrade(*s, why.message());
    bump(&ServerCounters::errors, "serve.errors");
    s->diags.report(why);
    return error_reply(req.id_json, reply_code(why.code()), why.message());
  }
  bump(&ServerCounters::edits_applied, "serve.edits_applied");
  ++s->edits_applied;

  // 5. Keep the session's dataflow lattice (if one was ever built) in
  // sync with the edit just applied. Only an input rewire changes the
  // lattice structurally; a failed cone update invalidates the engine
  // and the next dataflow lint rebuilds it from scratch.
  if (s->dataflow != nullptr && s->dataflow->valid()) {
    if (edit.kind == sta::Edit::Kind::kRewireInput) {
      (void)run_guarded([&] {
        (void)s->dataflow->update_rewire(*s->nl, edit.inst,
                                         options_.threads);
      });
    } else {
      s->dataflow->resync_value(*s->nl);
    }
  }

  std::string result = "{\"seq\":" + std::to_string(s->seq);
  if (undo) {
    s->undo.pop_back();
    result += ",\"edit\":" + edit_to_json(edit);
  } else {
    s->undo.push_back(inverse.value());
    if (s->undo.size() > options_.max_undo_depth)
      s->undo.erase(s->undo.begin());
    result += ",\"undo\":" + edit_to_json(inverse.value());
  }
  result += '}';
  return ok_reply(req.id_json, result);
}

// --- queries -------------------------------------------------------------

namespace {

/// Compute a query result with the session's engine of record: the
/// resident timer normally, the from-scratch batch engine when degraded.
/// Both produce byte-identical numbers (the timer's contract), so
/// degradation is invisible in query replies.
template <typename Incremental, typename Batch>
[[nodiscard]] Status query(Server::Session& s, Incremental&& inc,
                           Batch&& batch, bool* degraded_now) {
  *degraded_now = false;
  if (!s.degraded) {
    const Status st = run_guarded(inc);
    if (st.ok()) return {};
    *degraded_now = true;  // caller degrades with st's message
    const Status fallback = run_guarded(batch);
    return fallback.ok() ? Status{} : st;
  }
  return run_guarded(batch);
}

}  // namespace

std::string Server::cmd_timing(const Request& req) {
  std::string err;
  Session* s = find_session(req, err);
  if (s == nullptr) return err;

  sta::TimingResult timing;
  const sta::StaOptions& opts = s->timer->options();
  bool degraded_now = false;
  const Status st =
      query(*s, [&] { timing = s->timer->timing(); },
            [&] { timing = sta::analyze(*s->nl, opts); }, &degraded_now);
  if (degraded_now) degrade(*s, "timing query tripped the engine");
  if (!st.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, reply_code(st.code()), st.message());
  }
  auto result = compact(sta::critical_path_json(*s->nl, opts, timing));
  if (!result.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInternal,
                       result.status().message());
  }
  return ok_reply(req.id_json, result.value());
}

std::string Server::cmd_slacks(const Request& req) {
  std::string err;
  Session* s = find_session(req, err);
  if (s == nullptr) return err;

  auto buckets = int_param(req.frame, "buckets", 10, 1, 1000);
  if (!buckets.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInvalidValue,
                       buckets.status().message());
  }
  double period = 0.0;
  if (const json::Value* p = req.frame.find("period_tau")) {
    if (!p->is_number() || !(p->num > 0.0)) {
      bump(&ServerCounters::errors, "serve.errors");
      return error_reply(req.id_json, ReplyCode::kInvalidValue,
                         "\"period_tau\" must be a positive number");
    }
    period = p->num;
  }

  const sta::StaOptions& opts = s->timer->options();
  std::vector<double> slacks;
  bool degraded_now = false;
  const Status st = query(
      *s,
      [&] {
        if (period <= 0.0) period = s->timer->timing().min_period_tau;
        slacks = s->timer->slacks(period);
      },
      [&] {
        if (period <= 0.0)
          period = sta::analyze(*s->nl, opts).min_period_tau;
        slacks = sta::net_slacks(*s->nl, opts, period);
      },
      &degraded_now);
  if (degraded_now) degrade(*s, "slack query tripped the engine");
  if (!st.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, reply_code(st.code()), st.message());
  }
  const sta::SlackHistogramData hist =
      sta::slack_histogram_from_slacks(slacks, buckets.value());
  auto hist_json = compact(sta::slack_histogram_json(hist));
  if (!hist_json.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInternal,
                       hist_json.status().message());
  }
  return ok_reply(req.id_json, "{\"period_tau\":" + json::number(period) +
                                   ",\"histogram\":" + hist_json.value() +
                                   '}');
}

std::string Server::cmd_top_paths(const Request& req) {
  std::string err;
  Session* s = find_session(req, err);
  if (s == nullptr) return err;

  auto k = int_param(req.frame, "k", 5, 1, 1000);
  if (!k.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInvalidValue,
                       k.status().message());
  }
  const sta::StaOptions& opts = s->timer->options();
  std::vector<sta::CriticalPath> paths;
  bool degraded_now = false;
  const Status st = query(
      *s, [&] { paths = s->timer->top_paths(k.value()); },
      [&] { paths = sta::top_critical_paths(*s->nl, opts, k.value()); },
      &degraded_now);
  if (degraded_now) degrade(*s, "path query tripped the engine");
  if (!st.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, reply_code(st.code()), st.message());
  }

  std::string result = "{\"paths\":[";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const sta::CriticalPath& p = paths[i];
    if (i != 0) result += ',';
    result += "{\"path_tau\":" + json::number(p.path_tau) +
              ",\"endpoint_net\":" + std::to_string(p.endpoint_net.value()) +
              ",\"nodes\":[";
    for (std::size_t j = 0; j < p.nodes.size(); ++j) {
      const sta::PathNode& n = p.nodes[j];
      if (j != 0) result += ',';
      result += "{\"inst\":" + std::to_string(n.inst.value()) +
                ",\"name\":\"" + json::escape(s->nl->instance(n.inst).name) +
                "\",\"arrival_tau\":" + json::number(n.arrival_tau) + '}';
    }
    result += "]}";
  }
  result += "]}";
  return ok_reply(req.id_json, result);
}

std::string Server::cmd_qor(const Request& req) {
  std::string err;
  Session* s = find_session(req, err);
  if (s == nullptr) return err;

  auto buckets = int_param(req.frame, "buckets", 10, 1, 1000);
  if (!buckets.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInvalidValue,
                       buckets.status().message());
  }
  qor::SnapshotOptions opts;
  opts.sta = s->timer->options();
  opts.histogram_buckets = buckets.value();
  opts.continuous_sizing = s->meth.sizing == core::SizingLevel::kContinuous;

  qor::QorSnapshot snap;
  bool degraded_now = false;
  const Status st =
      query(*s, [&] { snap = qor::capture(*s->timer, opts); },
            [&] { snap = qor::capture(*s->nl, opts); }, &degraded_now);
  if (degraded_now) degrade(*s, "qor capture tripped the engine");
  if (!st.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, reply_code(st.code()), st.message());
  }
  auto hist_json = compact(sta::slack_histogram_json(snap.slack_histogram));
  if (!hist_json.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInternal,
                       hist_json.status().message());
  }
  std::string result =
      "{\"worst_path_tau\":" + json::number(snap.worst_path_tau) +
      ",\"min_period_tau\":" + json::number(snap.min_period_tau) +
      ",\"min_period_ps\":" + json::number(snap.min_period_ps) +
      ",\"min_period_fo4\":" + json::number(snap.min_period_fo4) +
      ",\"critical_path_fo4\":" + json::number(snap.critical_path_fo4) +
      ",\"critical_path_gates\":" +
      std::to_string(snap.critical_path_gates) +
      ",\"endpoints\":" + std::to_string(snap.endpoints) +
      ",\"area_um2\":" + json::number(snap.area_um2) +
      ",\"total_wirelength_um\":" + json::number(snap.total_wirelength_um) +
      ",\"critical_wirelength_um\":" +
      json::number(snap.critical_wirelength_um) +
      ",\"sizing_headroom_tau\":" + json::number(snap.sizing_headroom_tau) +
      ",\"slack_histogram\":" + hist_json.value() + '}';
  return ok_reply(req.id_json, result);
}

std::string Server::cmd_lint(const Request& req) {
  std::string err;
  Session* s = find_session(req, err);
  if (s == nullptr) return err;

  const std::string mode = req.frame.member_string("mode", "scan");
  if (mode != "scan" && mode != "dataflow") {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInvalidValue,
                       "\"mode\" must be \"scan\" or \"dataflow\"");
  }

  // mode=dataflow: make sure the cached per-session lattice is current.
  // A no-op refresh (counted on lint.dataflow.reuses) is the common case
  // — value edits and rewires were already folded in at edit time. On
  // analysis failure (combinational cycle) the engine stays invalid and
  // the GL-D/GL-X rules are silent, like the batch CLI.
  if (mode == "dataflow") {
    if (s->dataflow == nullptr)
      s->dataflow = std::make_unique<lint::DataflowEngine>();
    const Status refresh_st = run_guarded(
        [&] { (void)s->dataflow->refresh(*s->nl, {}, options_.threads); });
    if (!refresh_st.ok()) {
      bump(&ServerCounters::errors, "serve.errors");
      return error_reply(req.id_json, reply_code(refresh_st.code()),
                         refresh_st.message());
    }
  }

  std::string lint_json;
  bool degraded_now = false;
  const auto run = [&](double period_tau) {
    const lint::RuleRegistry registry = lint::default_registry();
    lint::LintConfig config;
    if (mode == "scan") {
      // Scan mode keeps the pre-dataflow reply surface: the GL-D/GL-X
      // families stay off so existing clients see identical reports.
      for (std::size_t i = 0; i < registry.size(); ++i) {
        const lint::RuleInfo& info = registry.rule(i).info();
        if (info.category == lint::Category::kDomain ||
            info.category == lint::Category::kDataflow) {
          config.rule_levels.emplace_back(info.id,
                                          lint::SeverityOverride::kOff);
        }
      }
    }
    lint::LintContext ctx;
    ctx.nl = s->nl.get();
    ctx.limits = tech::default_electrical_limits();
    ctx.constraints.period_tau = period_tau;
    ctx.constraints.skew_fraction = s->timer->options().clock.skew_fraction;
    if (mode == "dataflow" && s->dataflow != nullptr &&
        s->dataflow->valid()) {
      ctx.dataflow = s->dataflow.get();
    }
    const lint::LintReport report =
        lint::run_lint(registry, ctx, config, options_.threads);
    lint_json = lint::write_json(registry, report, s->name);
  };
  const Status st = query(
      *s, [&] { run(s->timer->timing().min_period_tau); },
      [&] {
        run(sta::analyze(*s->nl, s->timer->options()).min_period_tau);
      },
      &degraded_now);
  if (degraded_now) degrade(*s, "lint run tripped the engine");
  if (!st.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, reply_code(st.code()), st.message());
  }
  auto result = compact(lint_json);
  if (!result.ok()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInternal,
                       result.status().message());
  }
  return ok_reply(req.id_json, result.value());
}

// --- stats / shutdown ----------------------------------------------------

std::string Server::cmd_stats(const Request& req) {
  const std::string format = req.frame.member_string("format", "json");
  if (format != "json" && format != "text") {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInvalidValue,
                       "\"format\" must be \"json\" or \"text\"");
  }
  if (format == "text") {
    // The Prometheus exposition (docs/observability.md) embedded as one
    // JSON string, so the reply stays a single gap-serve-v1 line. Note
    // the wall section makes this the one non-deterministic reply.
    return ok_reply(req.id_json,
                    "{\"format\":\"text\",\"exposition\":\"" +
                        json::escape(obs::expose_text(common::metrics())) +
                        "\"}");
  }

  std::uint64_t dropped = 0;
  std::string sessions = "[";
  bool first = true;
  for (const auto& [name, s] : sessions_) {
    if (!first) sessions += ',';
    first = false;
    dropped += s->diags.dropped();
    sessions += "{\"name\":\"" + json::escape(name) + "\",\"design\":\"" +
                json::escape(s->design) + "\",\"seq\":" +
                std::to_string(s->seq) + ",\"degraded\":" +
                bool_json(s->degraded) + ",\"recovered\":" +
                bool_json(s->recovered) + ",\"undo_depth\":" +
                std::to_string(s->undo.size()) + ",\"diags\":" +
                std::to_string(s->diags.size()) + ",\"diags_dropped\":" +
                std::to_string(s->diags.dropped()) + ",\"journal\":" +
                bool_json(s->journal.is_open()) + ",\"instances\":" +
                std::to_string(s->nl->num_instances()) + ",\"nets\":" +
                std::to_string(s->nl->num_nets()) + ",\"journal_bytes\":" +
                std::to_string(s->journal.bytes_appended()) +
                ",\"edits_applied\":" + std::to_string(s->edits_applied) +
                ",\"degradations\":" + std::to_string(s->degradations) + '}';
  }
  sessions += ']';
  counters_.diags_dropped = dropped;

  const ServerCounters& c = counters_;
  std::string result =
      "{\"sessions\":" + sessions + ",\"counters\":{\"requests\":" +
      std::to_string(c.requests) + ",\"errors\":" + std::to_string(c.errors) +
      ",\"edits_applied\":" + std::to_string(c.edits_applied) +
      ",\"edits_rejected\":" + std::to_string(c.edits_rejected) +
      ",\"degraded\":" + std::to_string(c.degraded) +
      ",\"journal_overflow\":" + std::to_string(c.journal_overflow) +
      ",\"overloaded\":" + std::to_string(c.overloaded) +
      ",\"deadline_exceeded\":" + std::to_string(c.deadline_exceeded) +
      ",\"oversized_frames\":" + std::to_string(c.oversized_frames) +
      ",\"recovered_sessions\":" + std::to_string(c.recovered_sessions) +
      ",\"recovered_edits\":" + std::to_string(c.recovered_edits) +
      ",\"diags_dropped\":" + std::to_string(c.diags_dropped) + "}}";
  return ok_reply(req.id_json, result);
}

std::string Server::cmd_dump(const Request& req) {
  if (options_.journal_dir.empty()) {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kInvalidValue,
                       "dump needs a journal directory (gapd --journal-dir)");
  }
  std::string session;
  if (const json::Value* name = req.frame.find("session")) {
    if (!name->is_string()) {
      bump(&ServerCounters::errors, "serve.errors");
      return error_reply(req.id_json, ReplyCode::kInvalidValue,
                         "\"session\" must be a string");
    }
    if (sessions_.count(name->str) == 0) {
      bump(&ServerCounters::errors, "serve.errors");
      return error_reply(req.id_json, ReplyCode::kUnknownName,
                         "no session named '" + name->str + "'");
    }
    session = name->str;
  }
  // The dump request itself is the newest event in the ring, so the file
  // records why it exists.
  flight_event(obs::FlightEventKind::kDump, 0, flight_.total());
  const std::vector<std::string> written = dump_flight(session);
  std::string result = "{\"dumped\":[";
  for (std::size_t i = 0; i < written.size(); ++i) {
    if (i != 0) result += ',';
    result += '"' + json::escape(written[i]) + '"';
  }
  result += "],\"events\":" +
            std::to_string(std::min<std::uint64_t>(flight_.total(),
                                                   flight_.capacity())) +
            ",\"dropped\":" + std::to_string(flight_.dropped()) + '}';
  return ok_reply(req.id_json, result);
}

// --- dispatch loop -------------------------------------------------------

std::string Server::dispatch(const Request& req, double t0_us) {
  if (req.cmd == "load") return cmd_load(req, t0_us);
  if (req.cmd == "edit") return cmd_edit(req, /*undo=*/false, t0_us);
  if (req.cmd == "undo") return cmd_edit(req, /*undo=*/true, t0_us);
  // dump writes files as it goes, so (like load) it handles its own
  // budget story rather than joining the discard-the-reply path below.
  if (req.cmd == "dump") return cmd_dump(req);

  std::string reply;
  if (req.cmd == "timing") reply = cmd_timing(req);
  else if (req.cmd == "slacks") reply = cmd_slacks(req);
  else if (req.cmd == "top_paths") reply = cmd_top_paths(req);
  else if (req.cmd == "qor") reply = cmd_qor(req);
  else if (req.cmd == "lint") reply = cmd_lint(req);
  else if (req.cmd == "stats") reply = cmd_stats(req);
  else if (req.cmd == "shutdown") {
    shutdown_ = true;
    return ok_reply(req.id_json, "{\"shutdown\":true,\"sessions\":" +
                                     std::to_string(sessions_.size()) + '}');
  } else {
    bump(&ServerCounters::errors, "serve.errors");
    return error_reply(req.id_json, ReplyCode::kUnknownName,
                       "unknown command '" + req.cmd + "'");
  }
  // Read-only commands have no side effects, so an expired budget can
  // simply discard the computed reply.
  if (deadline_expired(req, t0_us)) {
    bump(&ServerCounters::errors, "serve.errors");
    bump(&ServerCounters::deadline_exceeded, "serve.deadline_exceeded");
    flight_event(obs::FlightEventKind::kDeadline, 0, 0, req.cmd);
    return error_reply(req.id_json, ReplyCode::kDeadline,
                       "request exceeded its deadline");
  }
  return reply;
}

std::string Server::handle_line(const std::string& line) {
  const double t0_us = common::tracer().now_us();
  const std::uint64_t req_id = ++next_req_id_;
  cur_req_id_ = req_id;
  // The span name carries the monotonic request id, so a chrome trace
  // (gapd --trace-out) correlates with flight events and the journal.
  const common::TraceSpan span("serve::request#", std::to_string(req_id));

  // Deterministic request-shape histograms (docs/observability.md): all
  // pure functions of the request stream, never of the clock.
  static common::Histogram& h_resident =
      common::metrics().histogram("serve.req.sessions_resident");
  static common::Histogram& h_frame =
      common::metrics().histogram("serve.req.frame_bytes");
  static common::Histogram& h_edits =
      common::metrics().histogram("serve.req.edits");
  static common::Histogram& h_waves =
      common::metrics().histogram("serve.req.wavefronts");
  static common::Histogram& h_wall =
      common::metrics().histogram("wall.serve.req.latency_us");
  static common::Counter& c_waves =
      common::metrics().counter("sta.wave.levels_touched");
  h_resident.record(static_cast<double>(sessions_.size()));
  h_frame.record(static_cast<double>(line.size()));
  flight_event(obs::FlightEventKind::kRequestBegin, 0, line.size());
  const std::uint64_t edits0 = counters_.edits_applied;
  const std::uint64_t waves0 = c_waves.value();

  bump(&ServerCounters::requests, "serve.requests");
  std::string reply;
  auto req = parse_request(line, options_.max_frame_bytes);
  if (!req.ok()) {
    if (options_.max_frame_bytes != 0 &&
        line.size() > options_.max_frame_bytes)
      bump(&ServerCounters::oversized_frames, "serve.oversized_frames");
    bump(&ServerCounters::errors, "serve.errors");
    reply = error_reply("null", reply_code(req.status().code()),
                        req.status().message(), req.status().loc());
  } else {
    // The dispatch itself runs under one more guard: whatever slips
    // through the per-command handling still becomes a reply, never an
    // abort.
    const Status st = run_guarded([&] { reply = dispatch(*req, t0_us); });
    if (!st.ok()) {
      bump(&ServerCounters::errors, "serve.errors");
      reply = error_reply(req->id_json, reply_code(st.code()), st.message());
    }
  }

  h_edits.record(static_cast<double>(counters_.edits_applied - edits0));
  h_waves.record(static_cast<double>(c_waves.value() - waves0));
  flight_event(obs::FlightEventKind::kRequestEnd, 0, reply.size());
  h_wall.record(common::tracer().now_us() - t0_us);
  if (options_.expose_every != 0 && req_id % options_.expose_every == 0)
    write_expose();
  cur_req_id_ = 0;
  return reply;
}

namespace {

/// getline with a memory bound: keeps at most `cap + 1` bytes (enough for
/// parse_request's size check to fire) and discards the rest of an
/// oversized line, so a hostile multi-gigabyte frame costs bounded RSS.
[[nodiscard]] bool read_frame_line(std::istream& in, std::string& line,
                                   std::size_t cap) {
  line.clear();
  bool any = false;
  for (int c = in.get(); c != std::char_traits<char>::eof(); c = in.get()) {
    any = true;
    if (c == '\n') return true;
    if (cap == 0 || line.size() <= cap) line.push_back(static_cast<char>(c));
  }
  return any;
}

}  // namespace

int Server::serve(std::istream& in, std::ostream& out) {
  std::string line;
  int rc = 0;
  while (!shutdown_ &&
         read_frame_line(in, line, options_.max_frame_bytes)) {
    out << handle_line(line) << '\n' << std::flush;
    if (!out) {
      rc = 5;  // reader closed the pipe; exit code for I/O
      break;
    }
  }
  // One final snapshot on the way out, so a run shorter than
  // --expose-interval still leaves an exposition file behind.
  write_expose();
  return rc;
}

}  // namespace gap::serve
