#include "serve/serve_cli.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <streambuf>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <sys/select.h>
#include <unistd.h>

#include <thread>
#endif

#include "common/trace.hpp"
#include "serve/server.hpp"

namespace gap::serve {

namespace {

constexpr const char* kUsage =
    "usage: gapd [--journal-dir DIR] [--threads N] [--max-sessions N]\n"
    "            [--max-frame-bytes N] [--max-journal-edits N]\n"
    "            [--max-session-diags N] [--deadline-us F] [--no-recover]\n"
    "            [--graph compact|pointer] [--trace-out FILE]\n"
    "            [--expose-out FILE] [--expose-interval N]\n"
    "            [--flight-capacity N]\n"
    "\n"
    "Resident timing service: answers gap-serve-v1 JSON frames (one per\n"
    "line) on stdout until stdin closes or a shutdown frame arrives.\n"
    "With --journal-dir, edits are write-ahead journaled and sessions\n"
    "are recovered on startup. --expose-out rewrites a Prometheus text\n"
    "snapshot every --expose-interval requests (and at exit);\n"
    "--trace-out writes a chrome://tracing JSON of per-request spans.\n"
    "On SIGTERM the daemon finishes the in-flight request, dumps the\n"
    "flight recorder next to the journals, and exits 0. See docs/gapd.md\n"
    "and docs/observability.md.\n";

/// SIGTERM latch. All the drain work (flight dump, exposition write,
/// trace flush) happens on the serve loop after sigterm_stdin() reports
/// EOF — never in signal context. On POSIX the latch is set by a
/// dedicated sigwait() watcher thread (install_sigterm_dump); elsewhere
/// by a std::signal handler, which is legal because atomic<int> is
/// lock-free on every supported platform.
std::atomic<int> g_sigterm{0};

void sigterm_handler(int) { g_sigterm.store(1, std::memory_order_relaxed); }

#if defined(__unix__) || defined(__APPLE__)

/// Self-pipe the sigwait() watcher writes one byte into when SIGTERM
/// arrives, waking sigterm_stdin()'s select. {-1, -1} until installed.
int g_sigterm_pipe[2] = {-1, -1};

/// streambuf over fd 0 whose blocking wait selects on both stdin and the
/// SIGTERM self-pipe. A SIGTERM raised at any moment (even mid-request)
/// is consumed by the watcher thread, which makes the pipe readable; the
/// next wait returns immediately, underflow reports EOF, and the serve
/// loop drains. No async signal handler is involved, so this closes the
/// classic races of the bare-EINTR scheme (a handler firing on a pool
/// worker, or in the gap just before read(2) blocks, leaves the daemon
/// wedged) and stays correct under sanitizers that defer handler
/// delivery to interception points.
class SigtermStdinBuf final : public std::streambuf {
 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    for (;;) {
      if (g_sigterm.load(std::memory_order_relaxed) != 0)
        return traits_type::eof();
      fd_set read_fds;
      FD_ZERO(&read_fds);
      FD_SET(0, &read_fds);
      int nfds = 1;
      if (g_sigterm_pipe[0] >= 0) {
        FD_SET(g_sigterm_pipe[0], &read_fds);
        nfds = g_sigterm_pipe[0] + 1;
      }
      const int ready =
          ::select(nfds, &read_fds, nullptr, nullptr, nullptr);
      if (ready < 0) {
        if (errno == EINTR) continue;  // signal: recheck the latch
        return traits_type::eof();
      }
      if (g_sigterm.load(std::memory_order_relaxed) != 0 ||
          (g_sigterm_pipe[0] >= 0 && FD_ISSET(g_sigterm_pipe[0], &read_fds)))
        return traits_type::eof();
      if (!FD_ISSET(0, &read_fds)) continue;
      const ::ssize_t n = ::read(0, buf_, sizeof buf_);
      if (n <= 0) return traits_type::eof();
      setg(buf_, buf_, buf_ + n);
      return traits_type::to_int_type(buf_[0]);
    }
  }

 private:
  char buf_[4096];
};

#endif  // __unix__ || __APPLE__

/// Parse a non-negative number; false on garbage or trailing characters.
bool parse_number(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || !(v >= 0.0)) return false;
  *out = v;
  return true;
}

int usage_error(std::ostream& err, const std::string& message) {
  err << "gapd: error: " << message << '\n' << kUsage;
  return kExitUsage;
}

}  // namespace

void install_sigterm_dump() {
#if defined(__unix__) || defined(__APPLE__)
  // Block SIGTERM process-wide before any thread exists: workers inherit
  // the mask, so the sigwait() below is the only consumer. The watcher
  // thread parks in sigwait until SIGTERM arrives, then sets the latch
  // and writes the self-pipe to wake sigterm_stdin()'s select. sigwait
  // is an ordinary blocking call — no async handler, so there is no
  // delivery race and no sanitizer interception to defer it.
  static sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGTERM);
  ::pthread_sigmask(SIG_BLOCK, &block, nullptr);
  if (::pipe(g_sigterm_pipe) != 0) {
    // No pipe: fall back to a plain handler; select() still wakes with
    // EINTR on the main thread most of the time.
    g_sigterm_pipe[0] = g_sigterm_pipe[1] = -1;
    ::pthread_sigmask(SIG_UNBLOCK, &block, nullptr);
    struct sigaction sa = {};
    sa.sa_handler = sigterm_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately no SA_RESTART: interrupt the wait
    ::sigaction(SIGTERM, &sa, nullptr);
    return;
  }
  std::thread([] {
    int sig = 0;
    if (::sigwait(&block, &sig) == 0 && sig == SIGTERM) {
      g_sigterm.store(1, std::memory_order_relaxed);
      const char byte = 1;
      (void)!::write(g_sigterm_pipe[1], &byte, 1);
    }
  }).detach();
#else
  std::signal(SIGTERM, sigterm_handler);
#endif
}

bool sigterm_received() {
  return g_sigterm.load(std::memory_order_relaxed) != 0;
}

std::istream& sigterm_stdin() {
#if defined(__unix__) || defined(__APPLE__)
  static SigtermStdinBuf buf;
  static std::istream stream(&buf);
  return stream;
#else
  return std::cin;
#endif
}

int run_gapd(int argc, const char* const* argv, std::istream& in,
             std::ostream& out, std::ostream& err) {
  ServerOptions options;
  bool recover = true;
  std::string trace_out;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string* into) {
      if (i + 1 >= argc) return false;
      *into = argv[++i];
      return true;
    };
    const auto number = [&](double* into, double lo, double hi) {
      std::string text;
      if (!value(&text)) return false;
      double v = 0.0;
      if (!parse_number(text, &v) || v < lo || v > hi) return false;
      *into = v;
      return true;
    };
    double v = 0.0;
    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return kExitOk;
    } else if (arg == "--journal-dir") {
      if (!value(&options.journal_dir))
        return usage_error(err, "--journal-dir needs a directory");
    } else if (arg == "--threads") {
      if (!number(&v, 0, 1024))
        return usage_error(err, "--threads needs an integer in [0, 1024]");
      options.threads = static_cast<int>(v);
    } else if (arg == "--max-sessions") {
      if (!number(&v, 1, 1024))
        return usage_error(err, "--max-sessions needs an integer in [1, 1024]");
      options.max_sessions = static_cast<std::size_t>(v);
    } else if (arg == "--max-frame-bytes") {
      if (!number(&v, 64, 1e9))
        return usage_error(err,
                           "--max-frame-bytes needs an integer in [64, 1e9]");
      options.max_frame_bytes = static_cast<std::size_t>(v);
    } else if (arg == "--max-journal-edits") {
      if (!number(&v, 1, 1e9))
        return usage_error(err,
                           "--max-journal-edits needs an integer in [1, 1e9]");
      options.max_journal_edits = static_cast<std::uint64_t>(v);
    } else if (arg == "--max-session-diags") {
      if (!number(&v, 1, 1e6))
        return usage_error(err,
                           "--max-session-diags needs an integer in [1, 1e6]");
      options.max_session_diags = static_cast<std::size_t>(v);
    } else if (arg == "--deadline-us") {
      if (!number(&v, 0, 1e12))
        return usage_error(err, "--deadline-us needs a number in [0, 1e12]");
      options.default_deadline_us = v;
    } else if (arg == "--graph") {
      // Timing-graph layout for the resident timers. Replies are
      // byte-identical either way (docs/data-layout.md).
      std::string text;
      if (!value(&text) || (text != "compact" && text != "pointer"))
        return usage_error(err, "--graph needs 'compact' or 'pointer'");
      options.graph = text == "compact" ? sta::GraphKind::kCompact
                                        : sta::GraphKind::kPointer;
    } else if (arg == "--no-recover") {
      recover = false;
    } else if (arg == "--trace-out") {
      if (!value(&trace_out))
        return usage_error(err, "--trace-out needs a file path");
    } else if (arg == "--expose-out") {
      if (!value(&options.expose_out))
        return usage_error(err, "--expose-out needs a file path");
    } else if (arg == "--expose-interval") {
      // Counted in requests, not seconds, so snapshot contents stay a
      // pure function of the request stream (docs/observability.md).
      if (!number(&v, 1, 1e9))
        return usage_error(err,
                           "--expose-interval needs an integer in [1, 1e9]");
      options.expose_every = static_cast<std::uint64_t>(v);
    } else if (arg == "--flight-capacity") {
      if (!number(&v, 16, 1e6))
        return usage_error(err,
                           "--flight-capacity needs an integer in [16, 1e6]");
      options.flight_capacity = static_cast<std::size_t>(v);
    } else {
      return usage_error(err, "unknown flag '" + arg + "'");
    }
  }

  if (!trace_out.empty()) {
    common::tracer().clear();
    common::tracer().set_enabled(true);
  }

  Server server(std::move(options));
  if (recover) {
    const common::Status st = server.recover();
    if (!st.ok()) {
      err << "gapd: " << st.to_string() << '\n';
      return kExitIo;
    }
  }
  int code = server.serve(in, out);

  if (sigterm_received()) {
    // Graceful drain: the in-flight request already got its reply; leave
    // the flight recorder next to the journals and exit clean.
    const auto dumped = server.dump_flight("");
    err << "gapd: SIGTERM: drained";
    for (const std::string& path : dumped) err << ' ' << path;
    err << '\n';
    if (code == kExitOk || code == kExitIo) code = kExitOk;
  }
  if (!trace_out.empty()) {
    common::tracer().set_enabled(false);
    std::ofstream os(trace_out);
    if (os) {
      common::tracer().write_chrome_json(os);
    } else {
      err << "gapd: error[io]: cannot write '" << trace_out << "'\n";
      if (code == kExitOk) code = kExitIo;
    }
  }
  if (code == kExitIo)
    err << "gapd: error[io]: short write on stdout (reader closed the "
           "pipe?)\n";
  return code;
}

}  // namespace gap::serve
