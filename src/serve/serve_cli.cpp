#include "serve/serve_cli.hpp"

#include <cstdlib>
#include <ostream>
#include <string>

#include "serve/server.hpp"

namespace gap::serve {

namespace {

constexpr const char* kUsage =
    "usage: gapd [--journal-dir DIR] [--threads N] [--max-sessions N]\n"
    "            [--max-frame-bytes N] [--max-journal-edits N]\n"
    "            [--max-session-diags N] [--deadline-us F] [--no-recover]\n"
    "            [--graph compact|pointer]\n"
    "\n"
    "Resident timing service: answers gap-serve-v1 JSON frames (one per\n"
    "line) on stdout until stdin closes or a shutdown frame arrives.\n"
    "With --journal-dir, edits are write-ahead journaled and sessions\n"
    "are recovered on startup. See docs/gapd.md for the protocol.\n";

/// Parse a non-negative number; false on garbage or trailing characters.
bool parse_number(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || !(v >= 0.0)) return false;
  *out = v;
  return true;
}

int usage_error(std::ostream& err, const std::string& message) {
  err << "gapd: error: " << message << '\n' << kUsage;
  return kExitUsage;
}

}  // namespace

int run_gapd(int argc, const char* const* argv, std::istream& in,
             std::ostream& out, std::ostream& err) {
  ServerOptions options;
  bool recover = true;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::string* into) {
      if (i + 1 >= argc) return false;
      *into = argv[++i];
      return true;
    };
    const auto number = [&](double* into, double lo, double hi) {
      std::string text;
      if (!value(&text)) return false;
      double v = 0.0;
      if (!parse_number(text, &v) || v < lo || v > hi) return false;
      *into = v;
      return true;
    };
    double v = 0.0;
    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return kExitOk;
    } else if (arg == "--journal-dir") {
      if (!value(&options.journal_dir))
        return usage_error(err, "--journal-dir needs a directory");
    } else if (arg == "--threads") {
      if (!number(&v, 0, 1024))
        return usage_error(err, "--threads needs an integer in [0, 1024]");
      options.threads = static_cast<int>(v);
    } else if (arg == "--max-sessions") {
      if (!number(&v, 1, 1024))
        return usage_error(err, "--max-sessions needs an integer in [1, 1024]");
      options.max_sessions = static_cast<std::size_t>(v);
    } else if (arg == "--max-frame-bytes") {
      if (!number(&v, 64, 1e9))
        return usage_error(err,
                           "--max-frame-bytes needs an integer in [64, 1e9]");
      options.max_frame_bytes = static_cast<std::size_t>(v);
    } else if (arg == "--max-journal-edits") {
      if (!number(&v, 1, 1e9))
        return usage_error(err,
                           "--max-journal-edits needs an integer in [1, 1e9]");
      options.max_journal_edits = static_cast<std::uint64_t>(v);
    } else if (arg == "--max-session-diags") {
      if (!number(&v, 1, 1e6))
        return usage_error(err,
                           "--max-session-diags needs an integer in [1, 1e6]");
      options.max_session_diags = static_cast<std::size_t>(v);
    } else if (arg == "--deadline-us") {
      if (!number(&v, 0, 1e12))
        return usage_error(err, "--deadline-us needs a number in [0, 1e12]");
      options.default_deadline_us = v;
    } else if (arg == "--graph") {
      // Timing-graph layout for the resident timers. Replies are
      // byte-identical either way (docs/data-layout.md).
      std::string text;
      if (!value(&text) || (text != "compact" && text != "pointer"))
        return usage_error(err, "--graph needs 'compact' or 'pointer'");
      options.graph = text == "compact" ? sta::GraphKind::kCompact
                                        : sta::GraphKind::kPointer;
    } else if (arg == "--no-recover") {
      recover = false;
    } else {
      return usage_error(err, "unknown flag '" + arg + "'");
    }
  }

  Server server(std::move(options));
  if (recover) {
    const common::Status st = server.recover();
    if (!st.ok()) {
      err << "gapd: " << st.to_string() << '\n';
      return kExitIo;
    }
  }
  const int code = server.serve(in, out);
  if (code == kExitIo)
    err << "gapd: error[io]: short write on stdout (reader closed the "
           "pipe?)\n";
  return code;
}

}  // namespace gap::serve
