#pragma once
/// \file server.hpp
/// The gapd resident timing service. A Server keeps implemented designs
/// and one sta::IncrementalTimer per session in memory and answers
/// gap-serve-v1 frames (protocol.hpp) one line at a time. The robustness
/// envelope, in one place:
///
///  - **Never aborts.** Every request is validated into a coded error
///    reply; contract violations on untrusted paths are captured
///    (ScopedContractCapture) and surfaced as "contract" replies.
///  - **Crash safety.** With a journal directory configured, every edit
///    is validated, then appended + fsync'd to the session's write-ahead
///    journal (journal.hpp), and only then applied. recover() replays
///    journals at startup, so a SIGKILLed server comes back answering
///    byte-identically to one that never died.
///  - **Watchdogs and limits.** Per-request deadlines (trace clock),
///    bounded session count, bounded per-session journal growth and
///    diagnostic retention — all overflow as coded "overloaded" /
///    "deadline" replies plus counters, never as unbounded growth.
///  - **Graceful degradation.** If replay finds interior corruption or
///    the incremental engine trips a contract, the session flips to
///    degraded mode: queries fall back to from-scratch sta::analyze on
///    the current netlist (byte-identical by the timer's contract) and
///    the server keeps serving.
///
/// Queries carry no wall times and no thread-dependent state, so replies
/// are byte-identical across runs, across --threads values, and across
/// a kill + recover (tests/serve_test.cpp enforces all three).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "obs/flight.hpp"
#include "serve/protocol.hpp"
#include "sta/sta.hpp"

namespace gap::serve {

struct ServerOptions {
  /// Directory for per-session write-ahead journals ("<session>.gapj").
  /// Empty disables journaling (and recover() is a no-op).
  std::string journal_dir;
  /// Worker threads for timing/lint engines (0 = all cores). Replies are
  /// byte-identical at any setting (the determinism contract).
  int threads = 1;
  std::size_t max_sessions = 8;
  std::size_t max_frame_bytes = 1u << 20;
  /// Edit records per session journal before edits bounce "overloaded".
  std::uint64_t max_journal_edits = 100000;
  /// Per-session DiagnosticEngine retention cap (older entries dropped).
  std::size_t max_session_diags = 256;
  /// Undo history depth per session.
  std::size_t max_undo_depth = 64;
  /// Default per-request budget in microseconds (0 = no deadline).
  double default_deadline_us = 0.0;
  /// Timing-graph layout for every session's resident timer: the flat
  /// structure-of-arrays graph (default) or the pointer netlist walk.
  /// Replies are byte-identical either way (docs/data-layout.md).
  sta::GraphKind graph = sta::GraphKind::kCompact;
  /// Prometheus exposition snapshot target (gapd --expose-out). Empty
  /// disables; otherwise the file is rewritten atomically when serve()
  /// exits, and additionally every `expose_every` requests when that is
  /// nonzero (gapd --expose-interval). A request count — not a timer —
  /// so snapshot contents stay deterministic (docs/observability.md).
  std::string expose_out;
  std::uint64_t expose_every = 0;
  /// Flight-recorder ring capacity (rounded up to a power of two).
  std::size_t flight_capacity = obs::FlightRecorder::kDefaultCapacity;
};

/// Per-Server counters, mirrored into common::metrics() under "serve.*".
/// Kept per-instance (not only process-global) so twin servers in one
/// test process report independently.
struct ServerCounters {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;           ///< error replies of any code
  std::uint64_t edits_applied = 0;
  std::uint64_t edits_rejected = 0;
  std::uint64_t degraded = 0;         ///< degraded-mode transitions
  std::uint64_t journal_overflow = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t oversized_frames = 0;
  std::uint64_t recovered_sessions = 0;
  std::uint64_t recovered_edits = 0;
  std::uint64_t diags_dropped = 0;    ///< across live sessions (retention)
};

class Server {
 public:
  /// Opaque resident-design state; defined in server.cpp. Public so the
  /// file-local helpers there can name Server::Session in signatures.
  struct Session;

  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Replay every "*.gapj" journal in options.journal_dir (sorted by
  /// name), rebuilding the sessions a previous process was killed with.
  /// Damage never fails recovery: torn tails are dropped, interior
  /// corruption degrades that session; the Status is non-ok only when
  /// the directory itself cannot be scanned.
  common::Status recover();

  /// Answer one request line with exactly one reply line (no '\n').
  /// Never throws, never aborts — the whole robustness envelope hangs
  /// off this function.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Serve frames from `in` until EOF or a shutdown request. Returns 0,
  /// or the I/O exit code (5) when the reply stream fails (e.g. the
  /// client closed the pipe).
  int serve(std::istream& in, std::ostream& out);

  [[nodiscard]] bool shutdown_requested() const { return shutdown_; }
  [[nodiscard]] const ServerCounters& counters() const { return counters_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }

  /// The always-on event ring (docs/observability.md, gap-flight-v1).
  [[nodiscard]] const obs::FlightRecorder& flight() const { return flight_; }

  /// Dump the flight recorder to "<journal_dir>/<session>.flight.json"
  /// for `session` (or every resident session when empty), atomically.
  /// Returns the paths written; empty when journaling is disabled or
  /// every write failed. Also invoked on degradation and by the `dump`
  /// protocol request, so a misbehaving server leaves evidence.
  std::vector<std::string> dump_flight(const std::string& session);

 private:
  std::string dispatch(const Request& req, double t0_us);
  std::string cmd_load(const Request& req, double t0_us);
  std::string cmd_edit(const Request& req, bool undo, double t0_us);
  std::string cmd_timing(const Request& req);
  std::string cmd_slacks(const Request& req);
  std::string cmd_top_paths(const Request& req);
  std::string cmd_qor(const Request& req);
  std::string cmd_lint(const Request& req);
  std::string cmd_stats(const Request& req);
  std::string cmd_dump(const Request& req);

  /// Resolve the request's "session" member; nullptr + error reply set.
  Session* find_session(const Request& req, std::string& error_out);
  void degrade(Session& s, const std::string& why);
  [[nodiscard]] std::string journal_path(const std::string& session) const;
  /// Microseconds left of the request budget; negative = expired.
  [[nodiscard]] bool deadline_expired(const Request& req, double t0_us) const;
  void bump(std::uint64_t ServerCounters::* field, const char* metric,
            std::uint64_t n = 1);
  /// Record a flight event stamped with the in-flight request id.
  void flight_event(obs::FlightEventKind kind, std::uint32_t code = 0,
                    std::uint64_t value = 0, std::string_view detail = {});
  /// Rewrite options_.expose_out atomically (no-op when unset).
  void write_expose() const;

  ServerOptions options_;
  ServerCounters counters_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  bool shutdown_ = false;
  obs::FlightRecorder flight_;
  std::uint64_t next_req_id_ = 0;  ///< monotonic; threaded through spans
  std::uint64_t cur_req_id_ = 0;   ///< id of the request being dispatched
};

}  // namespace gap::serve
