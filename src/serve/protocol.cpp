#include "serve/protocol.hpp"

#include <cmath>

namespace gap::serve {

namespace json = common::json;
using common::ErrorCode;
using common::Result;
using common::Status;

const char* to_string(ReplyCode code) {
  switch (code) {
    case ReplyCode::kUsage: return "usage";
    case ReplyCode::kMissingValue: return "missing_value";
    case ReplyCode::kUnknownName: return "unknown_name";
    case ReplyCode::kParse: return "parse";
    case ReplyCode::kInvalidValue: return "invalid_value";
    case ReplyCode::kDuplicate: return "duplicate";
    case ReplyCode::kStructural: return "structural";
    case ReplyCode::kContract: return "contract";
    case ReplyCode::kIo: return "io";
    case ReplyCode::kInternal: return "internal";
    case ReplyCode::kLint: return "lint";
    case ReplyCode::kOverloaded: return "overloaded";
    case ReplyCode::kDeadline: return "deadline";
  }
  return "internal";
}

ReplyCode reply_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return ReplyCode::kInternal;  // not an error
    case ErrorCode::kUsage: return ReplyCode::kUsage;
    case ErrorCode::kMissingValue: return ReplyCode::kMissingValue;
    case ErrorCode::kUnknownName: return ReplyCode::kUnknownName;
    case ErrorCode::kParse: return ReplyCode::kParse;
    case ErrorCode::kInvalidValue: return ReplyCode::kInvalidValue;
    case ErrorCode::kDuplicate: return ReplyCode::kDuplicate;
    case ErrorCode::kStructural: return ReplyCode::kStructural;
    case ErrorCode::kContract: return ReplyCode::kContract;
    case ErrorCode::kIo: return ReplyCode::kIo;
    case ErrorCode::kInternal: return ReplyCode::kInternal;
    case ErrorCode::kLint: return ReplyCode::kLint;
  }
  return ReplyCode::kInternal;
}

Result<Request> parse_request(const std::string& line,
                              std::size_t max_frame_bytes) {
  if (max_frame_bytes != 0 && line.size() > max_frame_bytes)
    return Status::error(ErrorCode::kInvalidValue,
                         "frame exceeds " + std::to_string(max_frame_bytes) +
                             " bytes",
                         {}, "serve");
  auto parsed = json::Value::parse_checked(line);
  if (!parsed.ok()) return parsed.status();
  Request r;
  r.frame = std::move(parsed).value();
  if (!r.frame.is_object())
    return Status::error(ErrorCode::kParse, "frame must be a JSON object",
                         {}, "serve");
  if (const json::Value* id = r.frame.find("id")) r.id_json = id->dump();
  const json::Value* cmd = r.frame.find("cmd");
  if (cmd == nullptr)
    return Status::error(ErrorCode::kMissingValue,
                         "frame has no \"cmd\" member", {}, "serve");
  if (!cmd->is_string())
    return Status::error(ErrorCode::kInvalidValue, "\"cmd\" must be a string",
                         {}, "serve");
  r.cmd = cmd->str;
  return r;
}

std::string ok_reply(const std::string& id_json,
                     const std::string& result_json) {
  std::string out = "{\"serve\":\"";
  out += kProtocolName;
  out += "\",\"id\":";
  out += id_json;
  out += ",\"ok\":true,\"result\":";
  out += result_json;
  out += '}';
  return out;
}

std::string error_reply(const std::string& id_json, ReplyCode code,
                        const std::string& message, common::SourceLoc loc) {
  std::string out = "{\"serve\":\"";
  out += kProtocolName;
  out += "\",\"id\":";
  out += id_json;
  out += ",\"ok\":false,\"error\":{\"code\":\"";
  out += to_string(code);
  out += "\",\"message\":\"";
  out += json::escape(message);
  out += '"';
  if (loc.valid()) {
    out += ",\"line\":";
    out += std::to_string(loc.line);
    out += ",\"column\":";
    out += std::to_string(loc.column);
  }
  out += "}}";
  return out;
}

namespace {

Status edit_error(const std::string& msg) {
  return Status::error(ErrorCode::kInvalidValue, msg, {}, "serve");
}

/// A 32-bit id field: present, a number, integral, in range.
Result<std::uint32_t> id_field(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  if (f == nullptr)
    return edit_error(std::string("edit is missing \"") + key + "\"");
  if (!f->is_number() || f->num < 0.0 || f->num >= 4294967295.0 ||
      f->num != std::floor(f->num))
    return edit_error(std::string("edit field \"") + key +
                      "\" must be a 32-bit unsigned integer");
  return static_cast<std::uint32_t>(f->num);
}

/// A bounded numeric field. The bounds are wire-level sanity limits:
/// JSON text can encode overflowing literals ("1e999" -> inf) and
/// extreme-but-finite values that push downstream timing arithmetic out
/// of range, so the codec rejects anything outside [lo, hi] before the
/// engine ever sees it.
Result<double> num_field(const json::Value& v, const char* key, double lo,
                         double hi) {
  const json::Value* f = v.find(key);
  if (f == nullptr)
    return edit_error(std::string("edit is missing \"") + key + "\"");
  if (!f->is_number() || !std::isfinite(f->num) || f->num < lo ||
      f->num > hi)
    return edit_error(std::string("edit field \"") + key +
                      "\" must be a number in [" + json::number(lo) + ", " +
                      json::number(hi) + "]");
  return f->num;
}

}  // namespace

Result<sta::Edit> edit_from_json(const json::Value& v) {
  if (!v.is_object()) return edit_error("edit must be a JSON object");
  const std::string op = v.member_string("op", "");
  if (op == "replace_cell") {
    auto inst = id_field(v, "inst");
    if (!inst.ok()) return inst.status();
    if (const json::Value* cell = v.find("cell")) {
      if (!cell->is_string() || cell->str.empty())
        return edit_error("edit field \"cell\" must be a non-empty string");
      return sta::Edit::replace_cell_named(InstanceId(*inst), cell->str);
    }
    auto cell_id = id_field(v, "cell_id");
    if (!cell_id.ok())
      return edit_error(
          "replace_cell needs \"cell\" (name) or \"cell_id\" (index)");
    return sta::Edit::replace_cell(InstanceId(*inst), CellId(*cell_id));
  }
  if (op == "set_drive") {
    auto inst = id_field(v, "inst");
    if (!inst.ok()) return inst.status();
    auto drive = num_field(v, "drive", 0.0, 1.0e6);
    if (!drive.ok()) return drive.status();
    return sta::Edit::set_drive(InstanceId(*inst), *drive);
  }
  if (op == "rewire") {
    auto inst = id_field(v, "inst");
    if (!inst.ok()) return inst.status();
    auto pin = id_field(v, "pin");
    if (!pin.ok()) return pin.status();
    if (*pin > 1000000) return edit_error("edit field \"pin\" out of range");
    auto net = id_field(v, "net");
    if (!net.ok()) return net.status();
    return sta::Edit::rewire(InstanceId(*inst), static_cast<int>(*pin),
                             NetId(*net));
  }
  if (op == "set_clock") {
    auto skew = num_field(v, "skew_fraction", 0.0, 0.99);
    if (!skew.ok()) return skew.status();
    auto extra = num_field(v, "extra_skew_tau", 0.0, 1.0e9);
    if (!extra.ok()) return extra.status();
    sta::ClockSpec clock;
    clock.skew_fraction = *skew;
    clock.extra_skew_tau = *extra;
    return sta::Edit::set_clock(clock);
  }
  if (op.empty())
    return edit_error("edit is missing \"op\"");
  return edit_error("unknown edit op '" + op + "'");
}

std::string edit_to_json(const sta::Edit& e) {
  std::string out = "{\"op\":\"";
  switch (e.kind) {
    case sta::Edit::Kind::kReplaceCell:
      out += "replace_cell\",\"inst\":";
      out += std::to_string(e.inst.value());
      if (!e.cell_name.empty()) {
        out += ",\"cell\":\"";
        out += json::escape(e.cell_name);
        out += '"';
      } else {
        out += ",\"cell_id\":";
        out += std::to_string(e.cell.value());
      }
      break;
    case sta::Edit::Kind::kSetDriveOverride:
      out += "set_drive\",\"inst\":";
      out += std::to_string(e.inst.value());
      out += ",\"drive\":";
      out += json::number(e.drive);
      break;
    case sta::Edit::Kind::kRewireInput:
      out += "rewire\",\"inst\":";
      out += std::to_string(e.inst.value());
      out += ",\"pin\":";
      out += std::to_string(e.pin);
      out += ",\"net\":";
      out += std::to_string(e.net.value());
      break;
    case sta::Edit::Kind::kSetClock:
      out += "set_clock\",\"skew_fraction\":";
      out += json::number(e.clock.skew_fraction);
      out += ",\"extra_skew_tau\":";
      out += json::number(e.clock.extra_skew_tau);
      break;
  }
  out += '}';
  return out;
}

}  // namespace gap::serve
