#pragma once
/// \file serve_cli.hpp
/// Implementation of the `gapd` resident timing daemon: recover journaled
/// sessions, then answer gap-serve-v1 frames from stdin on stdout until
/// EOF or a shutdown request. Lives in the library (not tools/gapd.cpp)
/// so tests can drive it in-process with captured streams.
///
///   gapd [--journal-dir DIR] [--threads N] [--max-sessions N]
///        [--max-frame-bytes N] [--max-journal-edits N]
///        [--max-session-diags N] [--deadline-us F] [--no-recover]
///        [--graph compact|pointer] [--trace-out FILE]
///        [--expose-out FILE] [--expose-interval N] [--flight-capacity N]
///
/// Exit codes (the same vocabulary as the other tools):
///   0  clean EOF, an acknowledged shutdown request, or a SIGTERM drain
///   2  malformed command line (unknown flag, missing or bad value)
///   5  I/O failure: journal directory unscannable, or stdout broke
///      mid-serve (client closed the pipe)
///
/// Protocol errors never affect the exit code: a malformed frame gets a
/// coded error *reply*, and the daemon keeps serving (docs/gapd.md).

#include <iosfwd>

namespace gap::serve {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitIo = 5;

/// Install the SIGTERM latch. On POSIX, SIGTERM is *blocked*
/// process-wide — pool workers spawned later inherit the mask, so the
/// signal can never fire a handler on a thread that isn't watching for
/// it — and a dedicated watcher thread consumes it with sigwait(), sets
/// the latch, and writes a self-pipe that wakes sigterm_stdin()'s
/// select. A SIGTERM sent at any moment (even mid-request) therefore
/// ends the serve loop at the next between-requests wait, and run_gapd
/// dumps the flight recorder next to the journals before exiting 0
/// (docs/gapd.md). Call from main() before spawning any threads; tests
/// that drive run_gapd in-process simply skip it.
void install_sigterm_dump();

/// Whether SIGTERM arrived since install_sigterm_dump().
[[nodiscard]] bool sigterm_received();

/// Stdin as an istream whose blocking wait is interruptible by the
/// SIGTERM latch (POSIX: a streambuf over fd 0 that selects on stdin
/// plus the latch's self-pipe; elsewhere just std::cin). Only meaningful
/// after install_sigterm_dump(); pass it to run_gapd as `in` so a
/// SIGTERM between requests ends the serve loop instead of leaving the
/// daemon blocked in read(2).
[[nodiscard]] std::istream& sigterm_stdin();

/// Run the daemon over explicit streams. `argv` excludes the program
/// name (pass argc-1/argv+1 from main). Frames are read from `in`,
/// replies go to `out`, startup diagnostics to `err`.
int run_gapd(int argc, const char* const* argv, std::istream& in,
             std::ostream& out, std::ostream& err);

}  // namespace gap::serve
