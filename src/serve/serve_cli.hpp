#pragma once
/// \file serve_cli.hpp
/// Implementation of the `gapd` resident timing daemon: recover journaled
/// sessions, then answer gap-serve-v1 frames from stdin on stdout until
/// EOF or a shutdown request. Lives in the library (not tools/gapd.cpp)
/// so tests can drive it in-process with captured streams.
///
///   gapd [--journal-dir DIR] [--threads N] [--max-sessions N]
///        [--max-frame-bytes N] [--max-journal-edits N]
///        [--max-session-diags N] [--deadline-us F] [--no-recover]
///        [--graph compact|pointer]
///
/// Exit codes (the same vocabulary as the other tools):
///   0  clean EOF or an acknowledged shutdown request
///   2  malformed command line (unknown flag, missing or bad value)
///   5  I/O failure: journal directory unscannable, or stdout broke
///      mid-serve (client closed the pipe)
///
/// Protocol errors never affect the exit code: a malformed frame gets a
/// coded error *reply*, and the daemon keeps serving (docs/gapd.md).

#include <iosfwd>

namespace gap::serve {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitIo = 5;

/// Run the daemon over explicit streams. `argv` excludes the program
/// name (pass argc-1/argv+1 from main). Frames are read from `in`,
/// replies go to `out`, startup diagnostics to `err`.
int run_gapd(int argc, const char* const* argv, std::istream& in,
             std::ostream& out, std::ostream& err);

}  // namespace gap::serve
