#pragma once
/// \file protocol.hpp
/// The gap-serve-v1 wire protocol: line-delimited JSON over stdin/stdout.
/// One request line in, exactly one reply line out, always — malformed,
/// truncated, oversized or semantically bogus frames come back as coded,
/// structured error replies and never abort the server (the PR 2
/// diagnostics discipline extended to the wire; docs/gapd.md).
///
/// Request frame (one JSON object per line):
///   {"id":7,"cmd":"edit","session":"s1","edit":{"op":"set_drive",...}}
/// Reply frame:
///   {"serve":"gap-serve-v1","id":7,"ok":true,"result":{...}}
///   {"serve":"gap-serve-v1","id":7,"ok":false,
///    "error":{"code":"invalid_value","message":"...","line":1,"column":9}}
///
/// Error codes on the wire are the common::ErrorCode taxonomy in
/// lower_snake spelling plus two serve-level conditions: "overloaded"
/// (backpressure: session/journal caps reached) and "deadline" (the
/// request's watchdog budget expired).

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/status.hpp"
#include "sta/incremental.hpp"

namespace gap::serve {

inline constexpr const char* kProtocolName = "gap-serve-v1";

/// Wire error vocabulary: common::ErrorCode plus serve-level conditions.
enum class ReplyCode : std::uint8_t {
  kUsage,
  kMissingValue,
  kUnknownName,
  kParse,
  kInvalidValue,
  kDuplicate,
  kStructural,
  kContract,
  kIo,
  kInternal,
  kLint,
  kOverloaded,  ///< backpressure: a resource cap would be exceeded
  kDeadline,    ///< watchdog: the per-request deadline expired
};

/// Stable wire spelling ("invalid_value", "overloaded", ...).
[[nodiscard]] const char* to_string(ReplyCode code);

/// Map a diagnostics-layer code onto the wire vocabulary.
[[nodiscard]] ReplyCode reply_code(common::ErrorCode code);

/// One parsed request frame. `id_json` is the compact re-serialization of
/// the frame's "id" member ("null" when absent), echoed verbatim into the
/// reply so pipelined clients can match replies to requests.
struct Request {
  std::string id_json = "null";
  std::string cmd;
  common::json::Value frame;  ///< the whole frame object (for params)
};

/// Parse and validate one frame line. Enforces `max_frame_bytes` before
/// parsing, requires a JSON object with a string "cmd", and never throws.
[[nodiscard]] common::Result<Request> parse_request(
    const std::string& line, std::size_t max_frame_bytes);

/// Build the single-line success reply.
[[nodiscard]] std::string ok_reply(const std::string& id_json,
                                   const std::string& result_json);

/// Build the single-line error reply. `loc`, when valid, adds
/// line/column members locating the offending byte of the request.
[[nodiscard]] std::string error_reply(const std::string& id_json,
                                      ReplyCode code,
                                      const std::string& message,
                                      common::SourceLoc loc = {});

// --- Edit codec: the sta::Edit API as the wire payload -------------------

/// Parse an edit object:
///   {"op":"replace_cell","inst":N,"cell":"nand2_x4"}   (or "cell_id":N)
///   {"op":"set_drive","inst":N,"drive":3.5}
///   {"op":"rewire","inst":N,"pin":P,"net":M}
///   {"op":"set_clock","skew_fraction":F,"extra_skew_tau":F}
/// Type/range violations come back as coded errors; semantic validation
/// against a netlist is the timer's job (IncrementalTimer::check).
[[nodiscard]] common::Result<sta::Edit> edit_from_json(
    const common::json::Value& v);

/// Compact one-line serialization; edit_from_json(parse(edit_to_json(e)))
/// reproduces `e` (the journal and the undo replies rely on this).
[[nodiscard]] std::string edit_to_json(const sta::Edit& e);

}  // namespace gap::serve
