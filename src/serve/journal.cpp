#include "serve/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define GAP_SERVE_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define GAP_SERVE_POSIX_IO 0
#include <fstream>
#endif

namespace gap::serve {

namespace json = common::json;
using common::ErrorCode;
using common::Result;
using common::Status;

std::string fnv1a64_hex(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string journal_line(const std::string& rec_json) {
  std::string out = "{\"crc\":\"";
  out += fnv1a64_hex(rec_json);
  out += "\",\"rec\":";
  out += rec_json;
  out += '}';
  return out;
}

Replay replay_journal(const std::string& text) {
  GAP_TRACE_SPAN("serve::journal_replay");
  Replay r;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  std::string bad;  // first failure, pending "was it the last line?"
  std::size_t bad_line = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    const bool has_newline = eol != std::string::npos;
    if (!has_newline) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = has_newline ? eol + 1 : text.size();
    ++line_no;
    if (line.empty()) continue;

    std::string why;
    auto parsed = json::Value::parse_checked(line);
    if (!parsed.ok()) {
      why = parsed.status().message();
    } else {
      const json::Value& v = parsed.value();
      const json::Value* crc = v.find("crc");
      const json::Value* rec = v.find("rec");
      if (crc == nullptr || !crc->is_string() || rec == nullptr) {
        why = "line is not a {crc,rec} journal record";
      } else if (crc->str != fnv1a64_hex(rec->dump())) {
        why = "checksum mismatch";
      } else if (!bad.empty()) {
        // A verified record *after* a failed line: the damage was not a
        // torn tail but interior corruption. Stop at the good prefix.
        r.halt = ReplayHalt::kCorrupt;
        r.detail = "line " + std::to_string(bad_line) + ": " + bad;
        return r;
      } else {
        r.records.push_back(*rec);
        continue;
      }
    }
    if (bad.empty()) {
      bad = why;
      bad_line = line_no;
    }
    // Keep scanning: a later verified line upgrades this to kCorrupt.
  }
  if (!bad.empty()) {
    r.halt = ReplayHalt::kTornTail;
    r.detail = "line " + std::to_string(bad_line) + ": " + bad;
  }
  return r;
}

Journal::~Journal() { close(); }

Journal::Journal(Journal&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      appended_(other.appended_),
      bytes_appended_(other.bytes_appended_) {
  other.fd_ = -1;
  other.appended_ = 0;
  other.bytes_appended_ = 0;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    appended_ = other.appended_;
    bytes_appended_ = other.bytes_appended_;
    other.fd_ = -1;
    other.appended_ = 0;
    other.bytes_appended_ = 0;
  }
  return *this;
}

void Journal::close() {
#if GAP_SERVE_POSIX_IO
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

Result<Journal> Journal::open(const std::string& path) {
  Journal j;
  j.path_ = path;
#if GAP_SERVE_POSIX_IO
  j.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (j.fd_ < 0)
    return Status::error(ErrorCode::kIo,
                         "cannot open journal '" + path +
                             "': " + std::strerror(errno),
                         {}, "serve");
#else
  // No durability guarantee without POSIX fsync; keep the protocol alive
  // by treating the journal as best-effort buffered I/O.
  std::ofstream probe(path, std::ios::app);
  if (!probe)
    return Status::error(ErrorCode::kIo, "cannot open journal '" + path + "'",
                         {}, "serve");
  j.fd_ = 0;  // sentinel: "open" for the portable path
#endif
  return j;
}

Status Journal::append(const std::string& rec_json) {
  GAP_TRACE_SPAN("serve::journal_append");
  if (!is_open())
    return Status::error(ErrorCode::kIo, "journal is not open", {}, "serve");
  const std::string line = journal_line(rec_json) + '\n';
#if GAP_SERVE_POSIX_IO
  std::size_t off = 0;
  while (off < line.size()) {
    const ::ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::error(ErrorCode::kIo,
                           "journal write failed: " +
                               std::string(std::strerror(errno)),
                           {}, "serve");
    }
    off += static_cast<std::size_t>(n);
  }
  {
    GAP_TRACE_SPAN("serve::journal_fsync");
    if (::fsync(fd_) != 0)
      return Status::error(ErrorCode::kIo,
                           "journal fsync failed: " +
                               std::string(std::strerror(errno)),
                           {}, "serve");
  }
#else
  std::ofstream out(path_, std::ios::app);
  out << line << std::flush;
  if (!out)
    return Status::error(ErrorCode::kIo, "journal write failed", {}, "serve");
#endif
  ++appended_;
  bytes_appended_ += line.size();
  return {};
}

}  // namespace gap::serve
