#pragma once
/// \file journal.hpp
/// gapd's write-ahead edit journal. One file per session; one checksummed
/// record per line:
///
///   {"crc":"<16 hex>","rec":<compact JSON>}
///
/// where crc is FNV-1a 64 over the compact serialization of `rec`. The
/// first record is the session header (design/methodology/tech/corner —
/// everything needed to rebuild the flow deterministically); every later
/// record is `{"seq":N,"edit":{...}}` in the gap-serve-v1 edit codec.
///
/// The ordering contract (docs/gapd.md): an edit is appended and fsync'd
/// *before* it is applied to the resident timer, and the append happens
/// only for edits the timer has already validated (IncrementalTimer::
/// check). Replay therefore reconstructs exactly the acknowledged state:
///
///  - a checksum/parse failure on the *last* line is a torn tail — the
///    crash interrupted a write that was never acknowledged, so the line
///    is dropped silently;
///  - a failure on any *earlier* line is real corruption — replay stops
///    at the verified prefix and the session comes back degraded.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"

namespace gap::serve {

/// FNV-1a 64-bit hash of `bytes`, rendered as 16 lowercase hex digits.
[[nodiscard]] std::string fnv1a64_hex(std::string_view bytes);

/// Wrap one compact record in its checksummed journal line (no newline).
/// `rec_json` must be the compact `dump()` form — the checksum at replay
/// is recomputed over the re-dump of the parsed record, which round-trips
/// byte-exactly only for compact output.
[[nodiscard]] std::string journal_line(const std::string& rec_json);

/// How a replay scan ended.
enum class ReplayHalt : std::uint8_t {
  kClean,     ///< every line verified
  kTornTail,  ///< only the final line failed (interrupted append)
  kCorrupt,   ///< an interior line failed — journal damaged after the fact
};

/// The longest verified prefix of a journal file.
struct Replay {
  std::vector<common::json::Value> records;  ///< parsed `rec` payloads
  ReplayHalt halt = ReplayHalt::kClean;
  std::string detail;  ///< human-readable reason when halt != kClean
};

/// Scan journal text (as read from disk) into its verified prefix. Never
/// fails: damage is reported through `halt`, and `records` always holds
/// everything up to the first bad line.
[[nodiscard]] Replay replay_journal(const std::string& text);

/// Append-only journal writer. Each append writes one full line and
/// flushes it to stable storage (fsync where the platform has it) before
/// returning, so a record the server acknowledged survives SIGKILL.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open `path` for append, creating it if needed.
  [[nodiscard]] static common::Result<Journal> open(const std::string& path);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Records appended through this writer (not counting replayed ones).
  [[nodiscard]] std::uint64_t appended() const { return appended_; }
  /// Bytes appended through this writer (checksum framing included).
  [[nodiscard]] std::uint64_t bytes_appended() const {
    return bytes_appended_;
  }

  /// Checksum-wrap `rec_json`, append the line, and sync it to disk.
  /// On failure nothing may be assumed durable; the caller must not
  /// apply the edit it was trying to commit.
  [[nodiscard]] common::Status append(const std::string& rec_json);

  void close();

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
};

}  // namespace gap::serve
