#include "synth/mapper.hpp"

#include <limits>
#include <unordered_map>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "logic/transforms.hpp"
#include "netlist/checks.hpp"

namespace gap::synth {
namespace {

using library::CellLibrary;
using library::Family;
using library::Func;
using logic::Aig;
using logic::Lit;
using logic::NodeKind;
using netlist::Netlist;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A DP state leaf: a node required in positive or negative polarity.
struct Leaf {
  std::uint32_t node = 0;
  bool positive = true;
};

/// A candidate cover of a (node, polarity) state.
struct Match {
  CellId cell;
  std::vector<Leaf> leaves;  ///< in cell pin order
};

class Mapper {
 public:
  Mapper(const Aig& aig, const CellLibrary& lib, const MapOptions& opt)
      : aig_(aig), lib_(lib), opt_(opt) {
    GAP_EXPECTS(pick(Func::kInv).has_value());
    count_refs();
    run_dp();
  }

  MapResult extract(Netlist& nl, const std::vector<NetId>& input_nets,
                    const std::string& prefix) {
    GAP_EXPECTS(input_nets.size() == aig_.num_pis());
    nl_ = &nl;
    inputs_ = &input_nets;
    prefix_ = prefix;
    net_memo_.clear();

    MapResult r;
    for (std::size_t i = 0; i < aig_.num_pos(); ++i) {
      const Lit po = aig_.po(i);
      GAP_EXPECTS(po.node() != 0);  // constant outputs unsupported
      r.outputs.push_back(ensure_net(po.node(), !po.complemented()));
    }
    return r;
  }

 private:
  // --- library access ---

  /// Preferred-family cell for a function (smallest drive), falling back
  /// to static.
  [[nodiscard]] std::optional<CellId> pick(Func f) const {
    if (auto c = lib_.smallest(f, opt_.family)) return c;
    if (opt_.family != Family::kStatic)
      if (auto c = lib_.smallest(f, Family::kStatic)) return c;
    return std::nullopt;
  }

  [[nodiscard]] double cell_cost(CellId id) const {
    const library::Cell& c = lib_.cell(id);
    if (opt_.objective == MapObjective::kArea) return c.area_um2;
    return c.parasitic + c.logical_effort * opt_.est_stage_effort;
  }

  // --- DP ---

  [[nodiscard]] static std::size_t key(std::uint32_t node, bool positive) {
    return static_cast<std::size_t>(node) * 2 + (positive ? 0 : 1);
  }

  [[nodiscard]] double leaf_cost(const Leaf& l) const {
    const double c = cost_[key(l.node, l.positive)];
    if (opt_.objective == MapObjective::kArea)
      return c / static_cast<double>(std::max(1, refs_[l.node]));
    return c;
  }

  [[nodiscard]] double match_cost(const Match& m) const {
    double c = cell_cost(m.cell);
    if (opt_.objective == MapObjective::kArea) {
      for (const Leaf& l : m.leaves) c += leaf_cost(l);
    } else {
      double worst = 0.0;
      for (const Leaf& l : m.leaves) worst = std::max(worst, leaf_cost(l));
      c += worst;
    }
    return c;
  }

  void consider(std::uint32_t node, bool positive, Func f,
                std::vector<Leaf> leaves) {
    const auto cell = pick(f);
    if (!cell) return;
    Match m{*cell, std::move(leaves)};
    for (const Leaf& l : m.leaves)
      if (cost_[key(l.node, l.positive)] == kInf) return;  // leaf unrealizable
    const double c = match_cost(m);
    const std::size_t k = key(node, positive);
    if (c < cost_[k]) {
      cost_[k] = c;
      best_[k] = std::move(m);
    }
  }

  /// Leaf for using literal `l` (optionally logically flipped by the
  /// pattern, e.g. De Morgan forms).
  [[nodiscard]] static Leaf leaf_of(Lit l, bool flip = false) {
    return Leaf{l.node(), !(l.complemented() ^ flip)};
  }

  void count_refs() {
    refs_.assign(aig_.num_nodes(), 0);
    for (std::uint32_t i = 0; i < aig_.num_nodes(); ++i) {
      const logic::Node& n = aig_.node(i);
      for (int k = 0; k < n.num_fanins; ++k) ++refs_[n.fanin[k].node()];
    }
    for (std::size_t i = 0; i < aig_.num_pos(); ++i)
      ++refs_[aig_.po(i).node()];
  }

  /// True if `l` points (non-complemented if `want_plain`) at a
  /// single-reference AND node, exposing it for a compound pattern.
  [[nodiscard]] bool absorbable_and(Lit l, bool want_plain) const {
    if (l.complemented() == want_plain) return false;
    const logic::Node& n = aig_.node(l.node());
    return n.kind == NodeKind::kAnd && refs_[l.node()] == 1;
  }

  void match_and(std::uint32_t i, const logic::Node& n) {
    const Lit l0 = n.fanin[0], l1 = n.fanin[1];
    // Single-level matches and their De Morgan duals.
    consider(i, false, Func::kNand2, {leaf_of(l0), leaf_of(l1)});
    consider(i, true, Func::kAnd2, {leaf_of(l0), leaf_of(l1)});
    consider(i, false, Func::kOr2, {leaf_of(l0, true), leaf_of(l1, true)});
    consider(i, true, Func::kNor2, {leaf_of(l0, true), leaf_of(l1, true)});

    // Two-level compounds; try both fanin orderings.
    for (int ord = 0; ord < 2; ++ord) {
      const Lit x = ord == 0 ? l0 : l1;
      const Lit m = ord == 0 ? l1 : l0;

      if (absorbable_and(m, /*want_plain=*/true)) {
        const logic::Node& mm = aig_.node(m.node());
        const Lit y = mm.fanin[0], z = mm.fanin[1];
        consider(i, false, Func::kNand3,
                 {leaf_of(x), leaf_of(y), leaf_of(z)});
        consider(i, true, Func::kAnd3, {leaf_of(x), leaf_of(y), leaf_of(z)});
        consider(i, false, Func::kOr3,
                 {leaf_of(x, true), leaf_of(y, true), leaf_of(z, true)});
        consider(i, true, Func::kNor3,
                 {leaf_of(x, true), leaf_of(y, true), leaf_of(z, true)});
        // nand4: both fanins absorbable ANDs.
        if (ord == 0 && absorbable_and(x, /*want_plain=*/true)) {
          const logic::Node& xx = aig_.node(x.node());
          consider(i, false, Func::kNand4,
                   {leaf_of(xx.fanin[0]), leaf_of(xx.fanin[1]), leaf_of(y),
                    leaf_of(z)});
        }
      }
      if (absorbable_and(m, /*want_plain=*/false)) {
        const logic::Node& mm = aig_.node(m.node());
        const Lit a = mm.fanin[0], b = mm.fanin[1];
        // pos(n) = !(ab) & x = !(ab + !x) = aoi21(a, b, !x)
        consider(i, true, Func::kAoi21,
                 {leaf_of(a), leaf_of(b), leaf_of(x, true)});
        // neg(n) = !((!a + !b) & x) = oai21(!a, !b, x)
        consider(i, false, Func::kOai21,
                 {leaf_of(a, true), leaf_of(b, true), leaf_of(x)});
      }
    }
  }

  void run_dp() {
    const std::size_t n = aig_.num_nodes();
    cost_.assign(n * 2, kInf);
    best_.assign(n * 2, Match{});

    const auto inv = pick(Func::kInv);
    const double inv_cost = cell_cost(*inv);

    for (std::uint32_t i = 1; i < n; ++i) {
      const logic::Node& node = aig_.node(i);
      switch (node.kind) {
        case NodeKind::kPi:
          cost_[key(i, true)] = 0.0;
          break;
        case NodeKind::kAnd:
          match_and(i, node);
          break;
        case NodeKind::kXor:
          consider(i, true, Func::kXor2,
                   {leaf_of(node.fanin[0]), leaf_of(node.fanin[1])});
          consider(i, false, Func::kXnor2,
                   {leaf_of(node.fanin[0]), leaf_of(node.fanin[1])});
          break;
        case NodeKind::kMux:
          // mux2 pins: (a, b, s) computing s ? b : a.
          consider(i, true, Func::kMux2,
                   {leaf_of(node.fanin[2]), leaf_of(node.fanin[1]),
                    leaf_of(node.fanin[0])});
          break;
        case NodeKind::kMaj:
          consider(i, true, Func::kMaj3,
                   {leaf_of(node.fanin[0]), leaf_of(node.fanin[1]),
                    leaf_of(node.fanin[2])});
          break;
        case NodeKind::kConst0:
          break;
      }
      // PI negation is handled by the inverter relaxation below.
      // Inverter relaxation between the two polarities.
      const std::size_t kp = key(i, true), kn = key(i, false);
      if (cost_[kn] + inv_cost < cost_[kp]) {
        cost_[kp] = cost_[kn] + inv_cost;
        best_[kp] = Match{*inv, {Leaf{i, false}}};
      }
      if (cost_[kp] + inv_cost < cost_[kn]) {
        cost_[kn] = cost_[kp] + inv_cost;
        best_[kn] = Match{*inv, {Leaf{i, true}}};
      }
      if (node.kind != NodeKind::kConst0) {
        GAP_ENSURES(refs_[i] == 0 ||
                    cost_[kp] < kInf || cost_[kn] < kInf);
      }
    }
  }

  // --- cover extraction ---

  NetId ensure_net(std::uint32_t node, bool positive) {
    const std::size_t k = key(node, positive);
    if (auto it = net_memo_.find(k); it != net_memo_.end()) return it->second;

    const logic::Node& n = aig_.node(node);
    NetId out;
    if (n.kind == NodeKind::kPi && positive) {
      // Locate the PI index (node order of PIs matches creation order).
      out = pi_net(node);
    } else {
      const Match& m = best_[k];
      GAP_EXPECTS(m.cell.valid());
      std::vector<NetId> ins;
      ins.reserve(m.leaves.size());
      for (const Leaf& l : m.leaves) ins.push_back(ensure_net(l.node, l.positive));
      out = nl_->add_net(nl_->fresh_name(prefix_ + "_n"));
      nl_->add_instance(nl_->fresh_name(prefix_ + "_g"), m.cell,
                        std::move(ins), out);
    }
    net_memo_.emplace(k, out);
    return out;
  }

  [[nodiscard]] NetId pi_net(std::uint32_t node) {
    if (pi_index_of_.empty()) {
      for (std::size_t i = 0; i < aig_.num_pis(); ++i)
        pi_index_of_[aig_.pi_node(i)] = i;
    }
    const auto it = pi_index_of_.find(node);
    GAP_EXPECTS(it != pi_index_of_.end());
    return (*inputs_)[it->second];
  }

  const Aig& aig_;
  const CellLibrary& lib_;
  MapOptions opt_;
  std::vector<int> refs_;
  std::vector<double> cost_;
  std::vector<Match> best_;

  Netlist* nl_ = nullptr;
  const std::vector<NetId>* inputs_ = nullptr;
  std::string prefix_;
  std::unordered_map<std::size_t, NetId> net_memo_;
  std::unordered_map<std::uint32_t, std::size_t> pi_index_of_;
};

/// Lower structural nodes the library cannot realize.
Aig lower_for_library(const Aig& aig, const CellLibrary& lib, Family family) {
  auto available = [&](Func f) {
    return lib.has(f, family) || lib.has(f, Family::kStatic);
  };
  logic::ExpandOptions opts;
  opts.expand_xor = !available(Func::kXor2) && !available(Func::kXnor2);
  opts.expand_mux = !available(Func::kMux2);
  opts.expand_maj = !available(Func::kMaj3);
  if (!opts.expand_xor && !opts.expand_mux && !opts.expand_maj) return aig;
  return logic::expand_structural(aig, opts);
}

}  // namespace

MapResult map_into(const Aig& aig, const MapOptions& options, Netlist& nl,
                   const std::vector<NetId>& input_nets,
                   const std::string& prefix) {
  GAP_TRACE_SPAN("synth::map");
  static common::Counter& runs = common::metrics().counter("mapper.runs");
  static common::Counter& nodes =
      common::metrics().counter("mapper.aig_nodes_covered");
  static common::Counter& gates =
      common::metrics().counter("mapper.gates_mapped");

  const Aig lowered = lower_for_library(aig, nl.lib(), options.family);
  const std::size_t before = nl.num_instances();
  Mapper mapper(lowered, nl.lib(), options);
  MapResult r = mapper.extract(nl, input_nets, prefix);
  r.mapped_depth = netlist::logic_depth(nl);
  runs.add();
  nodes.add(lowered.num_nodes());
  gates.add(nl.num_instances() - before);
  return r;
}

netlist::Netlist map_to_netlist(const Aig& aig, const CellLibrary& lib,
                                const MapOptions& options,
                                std::string netlist_name) {
  netlist::Netlist nl(std::move(netlist_name), &lib);
  std::vector<NetId> inputs;
  for (std::size_t i = 0; i < aig.num_pis(); ++i) {
    const PortId p = nl.add_input(aig.pi_name(i));
    inputs.push_back(nl.port(p).net);
  }
  MapResult r = map_into(aig, options, nl, inputs, "m");
  for (std::size_t i = 0; i < aig.num_pos(); ++i)
    nl.add_output(aig.po_name(i), r.outputs[i]);
  return nl;
}

}  // namespace gap::synth
