#pragma once
/// \file mapper.hpp
/// Technology mapping: cover the logic network with library cells. The
/// mapper is a DAGON-style dynamic program over (node, polarity) states
/// with a structural pattern set covering single cells (inv, nand2, nor2,
/// and2, or2, xor2/xnor2, mux2, maj3) and two-level compounds (nand3/4,
/// and3, nor3, or3, aoi21, oai21). Structural XOR/MUX/MAJ nodes that the
/// target library cannot implement are lowered to AND-inverter logic first.
///
/// Delay mode minimizes estimated worst-path delay using the logical-effort
/// delay of each candidate cell at an assumed per-stage electrical effort;
/// area mode minimizes total cell area with area-flow sharing for
/// multi-fanout nodes. Drive selection is deferred to gap::sizing.

#include <string>
#include <vector>

#include "library/library.hpp"
#include "logic/aig.hpp"
#include "netlist/netlist.hpp"

namespace gap::synth {

enum class MapObjective { kDelay, kArea };

struct MapOptions {
  MapObjective objective = MapObjective::kDelay;

  /// Preferred circuit family; functions missing from this family fall
  /// back to static cells.
  library::Family family = library::Family::kStatic;

  /// Assumed electrical effort (Cload/Cin) per stage for delay estimation
  /// during matching. 4.0 corresponds to FO4-style loading.
  double est_stage_effort = 4.0;
};

struct MapResult {
  std::vector<NetId> outputs;  ///< one net per AIG PO, in PO order
  int mapped_depth = 0;        ///< cell levels on the longest path
};

/// Map `aig` into an existing netlist `nl`. `input_nets[i]` supplies AIG
/// PI i. New instance/net names get `prefix`. Returns the PO nets.
MapResult map_into(const logic::Aig& aig, const MapOptions& options,
                   netlist::Netlist& nl, const std::vector<NetId>& input_nets,
                   const std::string& prefix);

/// Map `aig` into a standalone netlist with ports named after the AIG
/// PIs/POs.
[[nodiscard]] netlist::Netlist map_to_netlist(const logic::Aig& aig,
                                              const library::CellLibrary& lib,
                                              const MapOptions& options,
                                              std::string netlist_name);

}  // namespace gap::synth
