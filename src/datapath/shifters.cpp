#include "datapath/shifters.hpp"

#include <string>

#include "common/check.hpp"

namespace gap::datapath {

std::vector<Lit> build_barrel_shifter(Aig& aig, const std::vector<Lit>& data,
                                      const std::vector<Lit>& shift_amount) {
  GAP_EXPECTS(!data.empty());
  GAP_EXPECTS(!shift_amount.empty());
  const std::size_t n = data.size();
  std::vector<Lit> cur = data;
  for (std::size_t s = 0; s < shift_amount.size(); ++s) {
    const std::size_t dist = 1ull << s;
    const Lit sel = shift_amount[s];
    std::vector<Lit> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Lit shifted =
          i >= dist ? cur[i - dist] : logic::lit_false();
      next[i] = aig.create_mux(sel, shifted, cur[i]);
    }
    cur = std::move(next);
  }
  return cur;
}

Aig make_barrel_shifter_aig(int width) {
  GAP_EXPECTS(width >= 2);
  Aig aig;
  std::vector<Lit> data, amount;
  for (int i = 0; i < width; ++i)
    data.push_back(aig.create_pi("d" + std::to_string(i)));
  int bits = 0;
  while ((1 << bits) < width) ++bits;
  for (int i = 0; i < bits; ++i)
    amount.push_back(aig.create_pi("s" + std::to_string(i)));
  const auto out = build_barrel_shifter(aig, data, amount);
  for (std::size_t i = 0; i < out.size(); ++i)
    aig.add_po(out[i], "q" + std::to_string(i));
  return aig;
}

Lit build_equal(Aig& aig, const std::vector<Lit>& a,
                const std::vector<Lit>& b) {
  GAP_EXPECTS(a.size() == b.size());
  std::vector<Lit> bits;
  for (std::size_t i = 0; i < a.size(); ++i)
    bits.push_back(aig.create_xnor(a[i], b[i]));
  return aig.create_and_n(bits);
}

Lit build_less_than(Aig& aig, const std::vector<Lit>& a,
                    const std::vector<Lit>& b) {
  GAP_EXPECTS(a.size() == b.size());
  // From LSB to MSB: lt_i = (!a_i & b_i) | (a_i==b_i) & lt_{i-1}.
  Lit lt = logic::lit_false();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit eq = aig.create_xnor(a[i], b[i]);
    const Lit bi_gt = aig.create_and(!a[i], b[i]);
    lt = aig.create_or(bi_gt, aig.create_and(eq, lt));
  }
  return lt;
}

namespace {

/// (lt, eq) of the slice [lo, hi).
struct LtEq {
  Lit lt;
  Lit eq;
};

LtEq less_than_range(Aig& aig, const std::vector<Lit>& a,
                     const std::vector<Lit>& b, std::size_t lo,
                     std::size_t hi) {
  if (hi - lo == 1) {
    return {aig.create_and(!a[lo], b[lo]), aig.create_xnor(a[lo], b[lo])};
  }
  const std::size_t mid = (lo + hi) / 2;
  const LtEq low = less_than_range(aig, a, b, lo, mid);
  const LtEq high = less_than_range(aig, a, b, mid, hi);
  // High slice dominates; equal high slices defer to the low slice.
  return {aig.create_or(high.lt, aig.create_and(high.eq, low.lt)),
          aig.create_and(high.eq, low.eq)};
}

}  // namespace

Lit build_less_than_tree(Aig& aig, const std::vector<Lit>& a,
                         const std::vector<Lit>& b) {
  GAP_EXPECTS(a.size() == b.size());
  GAP_EXPECTS(!a.empty());
  return less_than_range(aig, a, b, 0, a.size()).lt;
}

}  // namespace gap::datapath
