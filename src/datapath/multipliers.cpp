#include "datapath/multipliers.hpp"

#include <string>

#include "common/check.hpp"

namespace gap::datapath {
namespace {

/// Column-wise partial products: columns[k] = all bits of weight 2^k.
std::vector<std::vector<Lit>> partial_products(Aig& aig,
                                               const std::vector<Lit>& a,
                                               const std::vector<Lit>& b) {
  const std::size_t n = a.size();
  std::vector<std::vector<Lit>> cols(2 * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      cols[i + j].push_back(aig.create_and(a[i], b[j]));
  return cols;
}

std::vector<Lit> array_multiplier(Aig& aig, const std::vector<Lit>& a,
                                  const std::vector<Lit>& b) {
  const std::size_t n = a.size();
  // Row-by-row: acc += (a & b_j) << j using ripple adders (linear depth).
  std::vector<Lit> acc(2 * n, logic::lit_false());
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<Lit> row(2 * n, logic::lit_false());
    for (std::size_t i = 0; i < n; ++i)
      row[i + j] = aig.create_and(a[i], b[j]);
    // acc = acc + row (ripple over the affected range).
    Lit carry = logic::lit_false();
    for (std::size_t k = j; k < 2 * n; ++k) {
      const Lit s = aig.create_xor_n({acc[k], row[k], carry});
      carry = aig.create_maj(acc[k], row[k], carry);
      acc[k] = s;
    }
  }
  return acc;
}

/// 3:2 / 2:2 compression of weighted columns followed by a Kogge-Stone
/// carry-propagate add; shared by Wallace and Booth.
std::vector<Lit> compress_and_add(Aig& aig,
                                  std::vector<std::vector<Lit>> cols,
                                  std::size_t out_width) {
  bool more = true;
  while (more) {
    more = false;
    std::vector<std::vector<Lit>> next(cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      auto& col = cols[k];
      std::size_t i = 0;
      while (col.size() - i >= 3) {
        const Lit s = aig.create_xor_n({col[i], col[i + 1], col[i + 2]});
        const Lit c = aig.create_maj(col[i], col[i + 1], col[i + 2]);
        next[k].push_back(s);
        if (k + 1 < cols.size()) next[k + 1].push_back(c);
        i += 3;
      }
      if (col.size() - i == 2 && col.size() > 2) {
        const Lit s = aig.create_xor(col[i], col[i + 1]);
        const Lit c = aig.create_and(col[i], col[i + 1]);
        next[k].push_back(s);
        if (k + 1 < cols.size()) next[k + 1].push_back(c);
        i += 2;
      }
      for (; i < col.size(); ++i) next[k].push_back(col[i]);
    }
    cols = std::move(next);
    for (const auto& col : cols)
      if (col.size() > 2) more = true;
  }

  std::vector<Lit> x(cols.size(), logic::lit_false());
  std::vector<Lit> y(cols.size(), logic::lit_false());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    if (!cols[k].empty()) x[k] = cols[k][0];
    if (cols[k].size() > 1) y[k] = cols[k][1];
  }
  const AdderResult sum =
      build_adder(aig, AdderKind::kKoggeStone, x, y, logic::lit_false());
  std::vector<Lit> out = sum.sum;
  out.resize(out_width, logic::lit_false());
  out.resize(out_width);
  return out;
}

std::vector<Lit> wallace_multiplier(Aig& aig, const std::vector<Lit>& a,
                                    const std::vector<Lit>& b) {
  const std::size_t n = a.size();
  return compress_and_add(aig, partial_products(aig, a, b), 2 * n);
}

}  // namespace

std::vector<Lit> build_multiplier(Aig& aig, MultiplierKind kind,
                                  const std::vector<Lit>& a,
                                  const std::vector<Lit>& b) {
  GAP_EXPECTS(a.size() == b.size());
  GAP_EXPECTS(!a.empty());
  switch (kind) {
    case MultiplierKind::kArray:
      return array_multiplier(aig, a, b);
    case MultiplierKind::kWallace:
      return wallace_multiplier(aig, a, b);
  }
  GAP_EXPECTS(false);
  return {};
}

Aig make_multiplier_aig(MultiplierKind kind, int width) {
  GAP_EXPECTS(width >= 1);
  Aig aig;
  std::vector<Lit> a, b;
  for (int i = 0; i < width; ++i)
    a.push_back(aig.create_pi("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(aig.create_pi("b" + std::to_string(i)));
  const auto prod = build_multiplier(aig, kind, a, b);
  for (std::size_t i = 0; i < prod.size(); ++i)
    aig.add_po(prod[i], "p" + std::to_string(i));
  return aig;
}

std::vector<Lit> build_booth_multiplier(Aig& aig, const std::vector<Lit>& a,
                                        const std::vector<Lit>& b) {
  GAP_EXPECTS(a.size() == b.size());
  GAP_EXPECTS(a.size() >= 2);
  const std::size_t w = a.size();
  const std::size_t out_w = 2 * w;

  // Sign-extended multiplicand and its double, out_w bits wide.
  auto sext = [&](const std::vector<Lit>& v, std::size_t shift) {
    std::vector<Lit> out(out_w);
    for (std::size_t j = 0; j < out_w; ++j) {
      if (j < shift)
        out[j] = logic::lit_false();
      else if (j - shift < w)
        out[j] = v[j - shift];
      else
        out[j] = v[w - 1];
    }
    return out;
  };

  std::vector<std::vector<Lit>> cols(out_w);
  auto b_bit = [&](int i) {
    if (i < 0) return logic::lit_false();
    if (i >= static_cast<int>(w)) return b[w - 1];  // sign extension
    return b[static_cast<std::size_t>(i)];
  };

  const std::size_t digits = (w + 1) / 2;
  for (std::size_t d = 0; d < digits; ++d) {
    const int i = static_cast<int>(2 * d);
    const Lit x = b_bit(i - 1), y = b_bit(i), z = b_bit(i + 1);
    // Radix-4 recode of (z, y, x): value = -2z + y + x.
    const Lit one = aig.create_xor(x, y);
    const Lit two = aig.create_or(
        aig.create_and(aig.create_and(!z, y), x),
        aig.create_and(aig.create_and(z, !y), !x));
    const Lit neg = z;

    const std::vector<Lit> a1 = sext(a, 2 * d);      // +-1 * a << 2d
    const std::vector<Lit> a2 = sext(a, 2 * d + 1);  // +-2 * a << 2d
    for (std::size_t j = 0; j < out_w; ++j) {
      const Lit mag = aig.create_mux(two, a2[j],
                                     aig.create_mux(one, a1[j],
                                                    logic::lit_false()));
      // Conditional invert applies to the shifted field only: the zeros
      // below bit 2d stay zero, and the +1 correction lands at bit 2d.
      cols[j].push_back(j < 2 * d ? mag : aig.create_xor(mag, neg));
    }
    // Two's-complement correction: +1 at the digit's LSB when negative.
    cols[2 * d].push_back(neg);
  }
  return compress_and_add(aig, std::move(cols), out_w);
}

Aig make_booth_multiplier_aig(int width) {
  GAP_EXPECTS(width >= 2);
  Aig aig;
  std::vector<Lit> a, b;
  for (int i = 0; i < width; ++i)
    a.push_back(aig.create_pi("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(aig.create_pi("b" + std::to_string(i)));
  const auto prod = build_booth_multiplier(aig, a, b);
  for (std::size_t i = 0; i < prod.size(); ++i)
    aig.add_po(prod[i], "p" + std::to_string(i));
  return aig;
}

const char* multiplier_name(MultiplierKind kind) {
  switch (kind) {
    case MultiplierKind::kArray: return "array";
    case MultiplierKind::kWallace: return "wallace";
  }
  return "?";
}

}  // namespace gap::datapath
