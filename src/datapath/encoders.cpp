#include "datapath/encoders.hpp"

#include <string>

#include "common/check.hpp"

namespace gap::datapath {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Recursive CLZ block: all_zero flag plus log2(n) count bits (LSB first),
/// valid only when !all_zero.
struct ClzBlock {
  Lit all_zero;
  std::vector<Lit> count;
};

ClzBlock clz_range(Aig& aig, const std::vector<Lit>& bits, std::size_t lo,
                   std::size_t hi) {
  if (hi - lo == 1) return {!bits[lo], {}};
  const std::size_t mid = (lo + hi) / 2;
  // bits are LSB-first; the *high* half holds the MSBs.
  const ClzBlock high = clz_range(aig, bits, mid, hi);
  const ClzBlock low = clz_range(aig, bits, lo, mid);
  ClzBlock out;
  out.all_zero = aig.create_and(high.all_zero, low.all_zero);
  // If the high half is empty, count = n/2 + clz(low), else clz(high).
  out.count.reserve(high.count.size() + 1);
  for (std::size_t k = 0; k < high.count.size(); ++k)
    out.count.push_back(
        aig.create_mux(high.all_zero, low.count[k], high.count[k]));
  out.count.push_back(high.all_zero);  // the new MSB of the count
  return out;
}

struct EncBlock {
  Lit valid;
  std::vector<Lit> index;
};

EncBlock enc_range(Aig& aig, const std::vector<Lit>& req, std::size_t lo,
                   std::size_t hi) {
  if (hi - lo == 1) return {req[lo], {}};
  const std::size_t mid = (lo + hi) / 2;
  const EncBlock high = enc_range(aig, req, mid, hi);
  const EncBlock low = enc_range(aig, req, lo, mid);
  EncBlock out;
  out.valid = aig.create_or(high.valid, low.valid);
  out.index.reserve(high.index.size() + 1);
  for (std::size_t k = 0; k < high.index.size(); ++k)
    out.index.push_back(
        aig.create_mux(high.valid, high.index[k], low.index[k]));
  out.index.push_back(high.valid);
  return out;
}

}  // namespace

std::vector<Lit> build_leading_zero_count(Aig& aig,
                                          const std::vector<Lit>& bits) {
  GAP_EXPECTS(is_power_of_two(bits.size()));
  const ClzBlock b = clz_range(aig, bits, 0, bits.size());
  std::vector<Lit> out;
  out.reserve(b.count.size() + 1);
  // Value = all_zero ? width : count. Width is a power of two, so the
  // top bit is all_zero and the low bits are gated off when it is set.
  for (Lit c : b.count) out.push_back(aig.create_and(c, !b.all_zero));
  out.push_back(b.all_zero);
  return out;
}

PriorityEncoding build_priority_encoder(Aig& aig,
                                        const std::vector<Lit>& requests) {
  GAP_EXPECTS(is_power_of_two(requests.size()));
  const EncBlock b = enc_range(aig, requests, 0, requests.size());
  return {b.index, b.valid};
}

Aig make_lzc_aig(int width) {
  GAP_EXPECTS(width >= 2);
  Aig aig;
  std::vector<Lit> bits;
  for (int i = 0; i < width; ++i)
    bits.push_back(aig.create_pi("d" + std::to_string(i)));
  const auto count = build_leading_zero_count(aig, bits);
  for (std::size_t i = 0; i < count.size(); ++i)
    aig.add_po(count[i], "z" + std::to_string(i));
  return aig;
}

Aig make_priority_encoder_aig(int width) {
  GAP_EXPECTS(width >= 2);
  Aig aig;
  std::vector<Lit> req;
  for (int i = 0; i < width; ++i)
    req.push_back(aig.create_pi("r" + std::to_string(i)));
  const PriorityEncoding enc = build_priority_encoder(aig, req);
  for (std::size_t i = 0; i < enc.index.size(); ++i)
    aig.add_po(enc.index[i], "i" + std::to_string(i));
  aig.add_po(enc.valid, "valid");
  return aig;
}

}  // namespace gap::datapath
