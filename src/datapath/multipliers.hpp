#pragma once
/// \file multipliers.hpp
/// Multiplier generators: the linear-depth array multiplier (what naive
/// synthesis yields) versus the log-depth Wallace tree + fast final adder
/// (the custom macro-cell style the paper's section 7.2 mentions).

#include <vector>

#include "datapath/adders.hpp"
#include "logic/aig.hpp"

namespace gap::datapath {

enum class MultiplierKind {
  kArray,    ///< row-by-row carry-propagate accumulation
  kWallace,  ///< 3:2 compressor tree + Kogge-Stone final add
};

/// Build an unsigned width x width -> 2*width multiplier.
[[nodiscard]] std::vector<Lit> build_multiplier(Aig& aig, MultiplierKind kind,
                                                const std::vector<Lit>& a,
                                                const std::vector<Lit>& b);

/// Standalone multiplier network for tests/benchmarks.
[[nodiscard]] Aig make_multiplier_aig(MultiplierKind kind, int width);

[[nodiscard]] const char* multiplier_name(MultiplierKind kind);

/// Radix-4 Booth multiplier over two's-complement operands: recodes the
/// multiplier into {-2,-1,0,1,2} digits, halving the partial-product
/// count — the custom macro style for signed DSP datapaths. Returns the
/// signed 2*width product.
[[nodiscard]] std::vector<Lit> build_booth_multiplier(
    Aig& aig, const std::vector<Lit>& a, const std::vector<Lit>& b);

/// Standalone signed Booth multiplier network.
[[nodiscard]] Aig make_booth_multiplier_aig(int width);

}  // namespace gap::datapath
