#pragma once
/// \file adders.hpp
/// Adder architecture generators (section 4.2 of the paper: "fast datapath
/// designs, such as carry-lookahead and carry-select adders ... exist in
/// pre-designed libraries, but are not automatically invoked in RTL logic
/// synthesis"). Synthesis from naive RTL produces the ripple structure;
/// the faster architectures stand in for the predefined macro cells.

#include <vector>

#include "logic/aig.hpp"

namespace gap::datapath {

using logic::Aig;
using logic::Lit;

enum class AdderKind {
  kRipple,       ///< ripple-carry: what naive synthesis produces
  kCarryLookahead,  ///< 4-bit-group CLA macro
  kCarrySelect,  ///< carry-select macro with sqrt-ish block sizes
  kKoggeStone,   ///< parallel-prefix custom-style macro
  kCarrySkip,    ///< ripple blocks with carry-skip bypass
  kBrentKung,    ///< parallel prefix with minimal fanout (vs Kogge-Stone)
};

struct AdderResult {
  std::vector<Lit> sum;  ///< width bits
  Lit carry_out;
};

/// Build an adder of the given architecture. a and b must be equal width.
[[nodiscard]] AdderResult build_adder(Aig& aig, AdderKind kind,
                                      const std::vector<Lit>& a,
                                      const std::vector<Lit>& b, Lit carry_in);

/// Standalone adder network with PIs a[width], b[width], cin and POs
/// sum[width], cout — for tests and architecture benchmarks.
[[nodiscard]] Aig make_adder_aig(AdderKind kind, int width);

/// Human-readable architecture name.
[[nodiscard]] const char* adder_name(AdderKind kind);

}  // namespace gap::datapath
