#pragma once
/// \file encoders.hpp
/// Leading-zero counter and priority encoder — normalization and
/// arbitration datapath macros (floating-point normalizers and bus
/// arbiters were standard hand-crafted blocks in the paper's era).

#include <vector>

#include "logic/aig.hpp"

namespace gap::datapath {

using logic::Aig;
using logic::Lit;

/// Count of leading zeros of `bits` (MSB = bits.back()). Width must be a
/// power of two. Returns log2(width)+1 output bits, LSB first; the value
/// equals width when all bits are zero.
[[nodiscard]] std::vector<Lit> build_leading_zero_count(
    Aig& aig, const std::vector<Lit>& bits);

struct PriorityEncoding {
  std::vector<Lit> index;  ///< log2(width) bits of the highest set bit
  Lit valid;               ///< any input set
};

/// MSB-priority encoder over a power-of-two-wide request vector.
[[nodiscard]] PriorityEncoding build_priority_encoder(
    Aig& aig, const std::vector<Lit>& requests);

/// Standalone networks for tests and benchmarks.
[[nodiscard]] Aig make_lzc_aig(int width);
[[nodiscard]] Aig make_priority_encoder_aig(int width);

}  // namespace gap::datapath
