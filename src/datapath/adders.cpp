#include "datapath/adders.hpp"

#include <string>

#include "common/check.hpp"

namespace gap::datapath {
namespace {

struct FullAdder {
  Lit sum;
  Lit carry;
};

FullAdder full_adder(Aig& aig, Lit a, Lit b, Lit c) {
  return {aig.create_xor_n({a, b, c}), aig.create_maj(a, b, c)};
}

AdderResult ripple(Aig& aig, const std::vector<Lit>& a,
                   const std::vector<Lit>& b, Lit cin) {
  AdderResult r;
  Lit carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FullAdder fa = full_adder(aig, a[i], b[i], carry);
    r.sum.push_back(fa.sum);
    carry = fa.carry;
  }
  r.carry_out = carry;
  return r;
}

/// One-level carry-lookahead with 4-bit groups; carries ripple between
/// groups through the (G, P) block terms.
AdderResult carry_lookahead(Aig& aig, const std::vector<Lit>& a,
                            const std::vector<Lit>& b, Lit cin) {
  const std::size_t n = a.size();
  std::vector<Lit> p(n), g(n), c(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = aig.create_xor(a[i], b[i]);
    g[i] = aig.create_and(a[i], b[i]);
  }
  c[0] = cin;
  for (std::size_t base = 0; base < n; base += 4) {
    const std::size_t hi = std::min(base + 4, n);
    // Carries within the group, two-level lookahead from c[base].
    for (std::size_t i = base; i < hi; ++i) {
      // c[i+1] = g_i + p_i g_{i-1} + ... + p_i..p_base * c[base]
      std::vector<Lit> terms;
      Lit prefix = logic::lit_true();
      for (std::size_t j = i + 1; j-- > base;) {
        terms.push_back(aig.create_and(prefix, g[j]));
        prefix = aig.create_and(prefix, p[j]);
      }
      terms.push_back(aig.create_and(prefix, c[base]));
      c[i + 1] = aig.create_or_n(terms);
    }
  }
  AdderResult r;
  for (std::size_t i = 0; i < n; ++i)
    r.sum.push_back(aig.create_xor(p[i], c[i]));
  r.carry_out = c[n];
  return r;
}

/// Carry-select with progressively growing block sizes.
AdderResult carry_select(Aig& aig, const std::vector<Lit>& a,
                         const std::vector<Lit>& b, Lit cin) {
  const std::size_t n = a.size();
  AdderResult r;
  Lit carry = cin;
  std::size_t base = 0;
  std::size_t block = 2;
  bool first = true;
  while (base < n) {
    const std::size_t hi = std::min(base + block, n);
    const std::vector<Lit> ablk(a.begin() + static_cast<long>(base),
                                a.begin() + static_cast<long>(hi));
    const std::vector<Lit> bblk(b.begin() + static_cast<long>(base),
                                b.begin() + static_cast<long>(hi));
    if (first) {
      // First block sees the real carry immediately; no selection needed.
      AdderResult blk = ripple(aig, ablk, bblk, carry);
      r.sum.insert(r.sum.end(), blk.sum.begin(), blk.sum.end());
      carry = blk.carry_out;
      first = false;
    } else {
      AdderResult blk0 = ripple(aig, ablk, bblk, logic::lit_false());
      AdderResult blk1 = ripple(aig, ablk, bblk, logic::lit_true());
      for (std::size_t i = 0; i < blk0.sum.size(); ++i)
        r.sum.push_back(aig.create_mux(carry, blk1.sum[i], blk0.sum[i]));
      carry = aig.create_mux(carry, blk1.carry_out, blk0.carry_out);
    }
    base = hi;
    ++block;  // later blocks get longer as the select signal arrives later
  }
  r.carry_out = carry;
  return r;
}

/// Kogge-Stone parallel-prefix adder.
AdderResult kogge_stone(Aig& aig, const std::vector<Lit>& a,
                        const std::vector<Lit>& b, Lit cin) {
  const std::size_t n = a.size();
  std::vector<Lit> p(n), g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = aig.create_xor(a[i], b[i]);
    g[i] = aig.create_and(a[i], b[i]);
  }
  // Prefix combine: (g, p) o (g', p') = (g + p g', p p').
  std::vector<Lit> G = g, P = p;
  for (std::size_t d = 1; d < n; d *= 2) {
    std::vector<Lit> G2 = G, P2 = P;
    for (std::size_t i = d; i < n; ++i) {
      G2[i] = aig.create_or(G[i], aig.create_and(P[i], G[i - d]));
      P2[i] = aig.create_and(P[i], P[i - d]);
    }
    G = std::move(G2);
    P = std::move(P2);
  }
  AdderResult r;
  // c_0 = cin; c_{i} = G_{i-1} + P_{i-1} cin for i >= 1.
  std::vector<Lit> c(n + 1);
  c[0] = cin;
  for (std::size_t i = 1; i <= n; ++i)
    c[i] = aig.create_or(G[i - 1], aig.create_and(P[i - 1], cin));
  for (std::size_t i = 0; i < n; ++i)
    r.sum.push_back(aig.create_xor(p[i], c[i]));
  r.carry_out = c[n];
  return r;
}

/// Carry-skip: ripple blocks whose carry can bypass the block when every
/// bit propagates (the classic low-cost speedup over plain ripple).
AdderResult carry_skip(Aig& aig, const std::vector<Lit>& a,
                       const std::vector<Lit>& b, Lit cin) {
  const std::size_t n = a.size();
  AdderResult r;
  Lit carry = cin;
  const std::size_t block = 4;
  for (std::size_t base = 0; base < n; base += block) {
    const std::size_t hi = std::min(base + block, n);
    // Block propagate: every bit position propagates.
    std::vector<Lit> props;
    Lit ripple_carry = carry;
    for (std::size_t i = base; i < hi; ++i) {
      const Lit p = aig.create_xor(a[i], b[i]);
      props.push_back(p);
      r.sum.push_back(aig.create_xor(p, ripple_carry));
      ripple_carry = aig.create_maj(a[i], b[i], ripple_carry);
    }
    const Lit block_p = aig.create_and_n(props);
    // Skip mux: if the whole block propagates, the incoming carry jumps
    // the block; otherwise take the rippled carry.
    carry = aig.create_mux(block_p, carry, ripple_carry);
  }
  r.carry_out = carry;
  return r;
}

/// Brent-Kung parallel-prefix adder: ~2*log2(n) levels but minimal
/// fanout and wiring, the classic area/fanout-friendly alternative to
/// Kogge-Stone.
AdderResult brent_kung(Aig& aig, const std::vector<Lit>& a,
                       const std::vector<Lit>& b, Lit cin) {
  const std::size_t n = a.size();
  std::vector<Lit> p(n), g(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = aig.create_xor(a[i], b[i]);
    g[i] = aig.create_and(a[i], b[i]);
  }
  // Prefix tree over (g, p): up-sweep then down-sweep. The tree assumes
  // a power-of-two width, so pad with neutral (g=0, p=0) elements; the
  // padding never influences lower indices.
  std::size_t n2 = 1;
  while (n2 < n) n2 *= 2;
  std::vector<Lit> G = g, P = p;
  G.resize(n2, logic::lit_false());
  P.resize(n2, logic::lit_false());
  auto combine = [&](std::size_t hi, std::size_t lo) {
    G[hi] = aig.create_or(G[hi], aig.create_and(P[hi], G[lo]));
    P[hi] = aig.create_and(P[hi], P[lo]);
  };
  for (std::size_t d = 1; d < n2; d *= 2)
    for (std::size_t i = 2 * d - 1; i < n2; i += 2 * d) combine(i, i - d);
  for (std::size_t d = n2 / 2; d >= 2; d /= 2)
    for (std::size_t i = d + d / 2 - 1; i < n2; i += d) combine(i, i - d / 2);

  AdderResult r;
  std::vector<Lit> c(n + 1);
  c[0] = cin;
  for (std::size_t i = 1; i <= n; ++i)
    c[i] = aig.create_or(G[i - 1], aig.create_and(P[i - 1], cin));
  for (std::size_t i = 0; i < n; ++i)
    r.sum.push_back(aig.create_xor(p[i], c[i]));
  r.carry_out = c[n];
  return r;
}

}  // namespace

AdderResult build_adder(Aig& aig, AdderKind kind, const std::vector<Lit>& a,
                        const std::vector<Lit>& b, Lit carry_in) {
  GAP_EXPECTS(a.size() == b.size());
  GAP_EXPECTS(!a.empty());
  switch (kind) {
    case AdderKind::kRipple:
      return ripple(aig, a, b, carry_in);
    case AdderKind::kCarryLookahead:
      return carry_lookahead(aig, a, b, carry_in);
    case AdderKind::kCarrySelect:
      return carry_select(aig, a, b, carry_in);
    case AdderKind::kKoggeStone:
      return kogge_stone(aig, a, b, carry_in);
    case AdderKind::kCarrySkip:
      return carry_skip(aig, a, b, carry_in);
    case AdderKind::kBrentKung:
      return brent_kung(aig, a, b, carry_in);
  }
  GAP_EXPECTS(false);
  return {};
}

Aig make_adder_aig(AdderKind kind, int width) {
  GAP_EXPECTS(width >= 1);
  Aig aig;
  std::vector<Lit> a, b;
  for (int i = 0; i < width; ++i)
    a.push_back(aig.create_pi("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(aig.create_pi("b" + std::to_string(i)));
  const Lit cin = aig.create_pi("cin");
  const AdderResult r = build_adder(aig, kind, a, b, cin);
  for (int i = 0; i < width; ++i)
    aig.add_po(r.sum[static_cast<std::size_t>(i)], "sum" + std::to_string(i));
  aig.add_po(r.carry_out, "cout");
  return aig;
}

const char* adder_name(AdderKind kind) {
  switch (kind) {
    case AdderKind::kRipple: return "ripple-carry";
    case AdderKind::kCarryLookahead: return "carry-lookahead";
    case AdderKind::kCarrySelect: return "carry-select";
    case AdderKind::kKoggeStone: return "kogge-stone";
    case AdderKind::kCarrySkip: return "carry-skip";
    case AdderKind::kBrentKung: return "brent-kung";
  }
  return "?";
}

}  // namespace gap::datapath
