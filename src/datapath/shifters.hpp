#pragma once
/// \file shifters.hpp
/// Barrel shifter and comparator generators — the paper's canonical
/// examples of blocks where custom macro cells beat synthesized random
/// logic (sections 7.2 and 9).

#include <vector>

#include "logic/aig.hpp"

namespace gap::datapath {

using logic::Aig;
using logic::Lit;

/// Logarithmic barrel shifter: shift `data` left by the binary amount
/// `shift_amount` (LSB first), filling with zeros. Width of shift_amount
/// must be ceil(log2(width(data))) or more; excess select bits force zero.
[[nodiscard]] std::vector<Lit> build_barrel_shifter(
    Aig& aig, const std::vector<Lit>& data,
    const std::vector<Lit>& shift_amount);

/// Standalone shifter network.
[[nodiscard]] Aig make_barrel_shifter_aig(int width);

/// Equality comparator: a == b.
[[nodiscard]] Lit build_equal(Aig& aig, const std::vector<Lit>& a,
                              const std::vector<Lit>& b);

/// Unsigned less-than comparator, LSB-first ripple (linear depth — what
/// naive RTL synthesis produces).
[[nodiscard]] Lit build_less_than(Aig& aig, const std::vector<Lit>& a,
                                  const std::vector<Lit>& b);

/// Unsigned less-than comparator, divide-and-conquer prefix tree
/// (logarithmic depth — the macro-cell implementation).
[[nodiscard]] Lit build_less_than_tree(Aig& aig, const std::vector<Lit>& a,
                                       const std::vector<Lit>& b);

}  // namespace gap::datapath
