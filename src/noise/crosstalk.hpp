#pragma once
/// \file crosstalk.hpp
/// Crosstalk noise analysis — the reason section 7.1 gives for domino's
/// absence from ASIC libraries: "dynamic logic is particularly
/// susceptible to noise, as any glitches on input voltages may cause a
/// discharge of the charge stored... These problems become more
/// pronounced with deeper submicron technologies."
///
/// Model: a victim net of length L couples to a parallel aggressor over
/// a fraction of its length. When the aggressor switches, the victim sees
/// a bump of Vdd * Cc / (Cc + Cg + Cpins): the standard charge-sharing
/// estimate with the driver's holding resistance ignored (worst case).
/// A static CMOS receiver tolerates bumps up to ~Vdd/2 (it is restoring);
/// a domino input must stay below the NMOS threshold (~Vt), because any
/// excursion above it starts discharging the dynamic node and the error
/// is latched, not restored.

#include <vector>

#include "netlist/netlist.hpp"

namespace gap::noise {

struct NoiseOptions {
  /// Fraction of a net's length assumed parallel to one aggressor.
  double coupled_fraction = 0.5;
  /// Coupling capacitance per um of parallel run, relative to the
  /// ground capacitance per um (deep submicron: near 1.0 and rising —
  /// the "more pronounced" trend of section 7.1).
  double coupling_ratio = 0.8;
  /// Noise margins as fractions of Vdd.
  double static_margin = 0.45;  ///< restoring static CMOS receiver
  double domino_margin = 0.20;  ///< ~Vt: dynamic node discharge threshold
};

struct NetNoise {
  NetId net;
  double bump_fraction = 0.0;  ///< victim bump / Vdd
  bool fails_static = false;
  bool fails_domino = false;
};

struct NoiseReport {
  std::vector<NetNoise> nets;  ///< nets with nonzero coupling, worst first
  std::size_t static_failures = 0;
  std::size_t domino_failures = 0;
  double worst_bump_fraction = 0.0;
};

/// Analyze every routed net (length > 0). Receiver family is taken from
/// the actual sink cells: a bump on a net only counts against the domino
/// margin if a domino input listens to it.
[[nodiscard]] NoiseReport analyze_noise(const netlist::Netlist& nl,
                                        const NoiseOptions& options);

/// Victim bump fraction for one net (exposed for tests and sizing).
[[nodiscard]] double bump_fraction(const netlist::Netlist& nl, NetId net,
                                   const NoiseOptions& options);

}  // namespace gap::noise
