#include "noise/crosstalk.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gap::noise {

using netlist::Netlist;
using netlist::NetSink;

double bump_fraction(const Netlist& nl, NetId net,
                     const NoiseOptions& options) {
  const netlist::Net& n = nl.net(net);
  if (n.length_um <= 0.0) return 0.0;
  const tech::Technology& t = nl.lib().technology();

  const double cg_ff = t.wire_c_ff_per_um * n.length_um *
                       (0.6 * n.width_multiple + 0.4);
  const double cc_ff = t.wire_c_ff_per_um * options.coupling_ratio *
                       n.length_um * options.coupled_fraction;
  double pins_ff = n.extra_cap_units * t.unit_inv_cin_ff;
  for (const NetSink& s : n.sinks)
    if (s.kind == NetSink::Kind::kInstancePin)
      pins_ff += nl.pin_cap(s.inst) * t.unit_inv_cin_ff;

  return cc_ff / (cc_ff + cg_ff + pins_ff);
}

NoiseReport analyze_noise(const Netlist& nl, const NoiseOptions& options) {
  GAP_EXPECTS(options.coupled_fraction >= 0.0 &&
              options.coupled_fraction <= 1.0);
  NoiseReport report;
  for (NetId nid : nl.all_nets()) {
    const double bump = bump_fraction(nl, nid, options);
    if (bump <= 0.0) continue;

    NetNoise v;
    v.net = nid;
    v.bump_fraction = bump;
    // Which margins apply depends on who listens.
    bool has_static_sink = false, has_domino_sink = false;
    for (const NetSink& s : nl.net(nid).sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      if (nl.cell_of(s.inst).family == library::Family::kDomino)
        has_domino_sink = true;
      else
        has_static_sink = true;
    }
    v.fails_static = has_static_sink && bump > options.static_margin;
    v.fails_domino = has_domino_sink && bump > options.domino_margin;
    if (v.fails_static) ++report.static_failures;
    if (v.fails_domino) ++report.domino_failures;
    report.worst_bump_fraction =
        std::max(report.worst_bump_fraction, bump);
    report.nets.push_back(v);
  }
  std::sort(report.nets.begin(), report.nets.end(),
            [](const NetNoise& a, const NetNoise& b) {
              return a.bump_fraction > b.bump_fraction;
            });
  return report;
}

}  // namespace gap::noise
