#include "tech/scaling.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gap::tech {

double generations_equivalent(double speed_ratio) {
  GAP_EXPECTS(speed_ratio > 0.0);
  return std::log(speed_ratio) / std::log(kSpeedPerGeneration);
}

double speed_from_generations(double generations) {
  return std::pow(kSpeedPerGeneration, generations);
}

double speed_from_shrink(double shrink_fraction) {
  GAP_EXPECTS(shrink_fraction >= 0.0 && shrink_fraction < 1.0);
  // Delay scales roughly with L^alpha in velocity-saturated short-channel
  // devices combined with capacitance reduction; alpha calibrated to the
  // paper's data point (5% shrink -> 18% speed): 1.18 = (1/0.95)^alpha
  // -> alpha = ln(1.18)/ln(1/0.95) ~ 3.23.
  constexpr double kAlpha = 3.2276;
  return std::pow(1.0 / (1.0 - shrink_fraction), kAlpha);
}

}  // namespace gap::tech
