#pragma once
/// \file technology.hpp
/// Process technology model. Everything in the flow is normalized to the
/// logical-effort time unit tau of the active technology; this file owns the
/// conversions between physical units (ps, fF, ohm, um) and normalized units
/// (tau, unit input capacitances).
///
/// The FO4 rule used throughout is the paper's own (footnote 1):
///   FO4 delay [ps] = 500 * Leff [um]
/// e.g. Leff = 0.15 um  ->  FO4 = 75 ps (the IBM 1.0 GHz PowerPC process).
/// With the canonical logical-effort inverter (g = 1, p = 1), an FO4 inverter
/// has delay tau * (p + g*4) = 5 tau, so tau = FO4 / 5.

#include <optional>
#include <string>
#include <vector>

namespace gap::tech {

/// Named process corner: multiplies all gate and wire delays.
/// `delay_factor` 1.0 = typical silicon; > 1 slower, < 1 faster.
struct ProcessCorner {
  std::string name;
  double delay_factor = 1.0;
};

/// A fabrication process. Immutable value type; create via the factory
/// functions below or aggregate-initialize for tests.
struct Technology {
  std::string name;

  // --- transistor / timing ---
  double drawn_um = 0.25;   ///< Drawn (nominal) channel length.
  double leff_um = 0.18;    ///< Effective channel length (sets speed).
  double vdd_v = 2.5;       ///< Supply voltage.

  // --- capacitance / resistance reference points ---
  double unit_inv_cin_ff = 2.0;    ///< Input cap of the unit (1x) inverter.
  double wire_r_ohm_per_um = 0.08; ///< Mid-layer aluminum sheet resistance.
  double wire_c_ff_per_um = 0.20;  ///< Mid-layer wire capacitance.

  /// FO4 inverter delay in ps (paper's rule of thumb).
  [[nodiscard]] double fo4_ps() const { return 500.0 * leff_um; }

  /// Logical-effort time unit in ps (FO4 = 5 tau).
  [[nodiscard]] double tau_ps() const { return fo4_ps() / 5.0; }

  /// Effective output resistance of the unit inverter in ohm, defined so
  /// that driving one unit input capacitance costs exactly one tau.
  [[nodiscard]] double unit_drive_r_ohm() const {
    return tau_ps() * 1000.0 / unit_inv_cin_ff;  // ps / fF -> ohm
  }

  /// Convert a capacitance in fF to unit input capacitances.
  [[nodiscard]] double cap_to_units(double c_ff) const {
    return c_ff / unit_inv_cin_ff;
  }

  /// Convert a delay in tau units to picoseconds.
  [[nodiscard]] double tau_to_ps(double tau) const { return tau * tau_ps(); }

  /// Convert picoseconds to tau units.
  [[nodiscard]] double ps_to_tau(double ps) const { return ps / tau_ps(); }

  /// Convert a delay in tau units to FO4 units.
  [[nodiscard]] double tau_to_fo4(double tau) const { return tau / 5.0; }

  /// Convert FO4 units to tau units.
  [[nodiscard]] double fo4_to_tau(double fo4) const { return fo4 * 5.0; }
};

/// Process-level electrical design-rule limits used by gap::lint's
/// electrical rules when a cell does not carry explicit Liberty
/// `max_capacitance` / `max_transition` / `max_fanout` attributes. The
/// values are expressed in the flow's normalized units so one set of
/// defaults serves every technology.
struct ElectricalLimits {
  /// Maximum load per unit of driver strength, in unit input
  /// capacitances. A unit inverter at this load has electrical delay of
  /// `max_load_units_per_drive` tau — far past the 4-8 tau of a sized
  /// design, but short of where the first-order RC model loses meaning.
  double max_load_units_per_drive = 48.0;

  /// Maximum output transition proxy in tau (electrical effort plus the
  /// Elmore wire term). Signals slower than this degrade noise margins
  /// and short-circuit power beyond what the cell characterization saw.
  double max_transition_tau = 40.0;

  /// Maximum sink count per net regardless of capacitance: very wide
  /// fanout hurts routability and yield even when the load is buffered.
  double max_fanout = 16.0;

  /// Wires at or beyond this length need an adequately sized driver (or
  /// repeaters); see `weak_drive`.
  double long_wire_um = 800.0;

  /// Drivers weaker than this (unit-inverter multiples) on a long wire
  /// are flagged: the wire RC dominates and repeater insertion or
  /// upsizing is mandatory.
  double weak_drive = 2.0;
};

/// The default limits. Kept as a function (not constants) so a future
/// per-technology override has an obvious seam.
[[nodiscard]] ElectricalLimits default_electrical_limits();

/// Typical merchant ASIC 0.25 um process (aluminum interconnect).
/// Leff = 0.18 um per the paper's footnote 2 -> FO4 = 90 ps.
[[nodiscard]] Technology asic_025um();

/// Performance-tuned 0.25 um process as used for custom processors.
/// Leff = 0.15 um per the paper's footnote 1 -> FO4 = 75 ps.
[[nodiscard]] Technology custom_025um();

/// ASIC 0.35 um process (previous generation; used for scaling checks).
[[nodiscard]] Technology asic_035um();

/// IBM-like 0.18 um process with short Leff (CMOS7S: Leff = 0.12 um,
/// measured FO4 about 55 ps per the paper's section 8.3; the 500*Leff rule
/// gives 60 ps, i.e. the rule is conservative for tuned processes).
[[nodiscard]] Technology ibm_018um();

/// Standard corners.
[[nodiscard]] ProcessCorner corner_typical();
/// Worst-case corner as quoted by ASIC libraries for the slower fabs:
/// typical silicon is 60-70% faster (paper section 8), so worst-case
/// delay_factor is about 1.65.
[[nodiscard]] ProcessCorner corner_worst_case();
/// Conservative signoff corner an *average* ASIC team actually uses:
/// between typical and worst-case (shipping 120-150 MHz parts in 0.25 um
/// implies about 1.34x, not the full 1.65x worst-case quote).
[[nodiscard]] ProcessCorner corner_conservative();

/// Sellable fast bin off a good line. The extreme 3-sigma chips run
/// 20-40% above typical but "without sufficient yield for low cost ASIC
/// use" (section 8); the high-volume fast bin a custom vendor actually
/// ships is about 15% above typical, so delay_factor = 0.87. Combined
/// with the worst-case signoff corner this gives the paper's overall
/// process factor: 1.65 / 0.87 = x1.90.
[[nodiscard]] ProcessCorner corner_fast_bin();

/// CLI-facing name lookups, shared by gapflow and gapd so the two tools
/// cannot drift apart on the accepted vocabulary. Names are the
/// command-line spellings ("asic025", "worst"), not Technology::name.
[[nodiscard]] std::optional<Technology> technology_by_name(
    const std::string& name);
[[nodiscard]] std::vector<std::string> technology_names();
[[nodiscard]] std::optional<ProcessCorner> corner_by_name(
    const std::string& name);

}  // namespace gap::tech
