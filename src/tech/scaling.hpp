#pragma once
/// \file scaling.hpp
/// Process-generation scaling rules used by the paper's framing argument:
/// one process generation (e.g. 0.35 -> 0.25 um) is worth about 1.5x in
/// speed, so a 6-8x gap equals about five generations (section 2). Also the
/// optical-shrink model of section 8.1.1 (Intel 856: 5% shrink -> 18% speed).

namespace gap::tech {

/// Speed improvement factor per full process generation (paper's 1.5x).
inline constexpr double kSpeedPerGeneration = 1.5;

/// Number of process generations equivalent to a given speed ratio,
/// i.e. log_{1.5}(ratio). Requires ratio > 0.
[[nodiscard]] double generations_equivalent(double speed_ratio);

/// Speed ratio from n generations (n may be fractional).
[[nodiscard]] double speed_from_generations(double generations);

/// Speed gain from an optical shrink of the given linear fraction
/// (e.g. 0.05 for a 5% shrink). Model: gate delay ~ CV/I with channel
/// length; empirically calibrated so a 5% shrink yields about 18%
/// (Intel 0.25 um 856 process, paper section 8.1.1).
[[nodiscard]] double speed_from_shrink(double shrink_fraction);

}  // namespace gap::tech
