#include "tech/technology.hpp"

namespace gap::tech {

Technology asic_025um() {
  Technology t;
  t.name = "asic-0.25um-al";
  t.drawn_um = 0.25;
  t.leff_um = 0.18;
  t.vdd_v = 2.5;
  t.unit_inv_cin_ff = 2.0;
  t.wire_r_ohm_per_um = 0.08;
  t.wire_c_ff_per_um = 0.20;
  return t;
}

Technology custom_025um() {
  Technology t = asic_025um();
  t.name = "custom-0.25um-al";
  t.leff_um = 0.15;  // performance-tuned transistors
  t.vdd_v = 2.1;     // Alpha 21264A supply
  return t;
}

Technology asic_035um() {
  Technology t;
  t.name = "asic-0.35um-al";
  t.drawn_um = 0.35;
  t.leff_um = 0.27;
  t.vdd_v = 3.3;
  t.unit_inv_cin_ff = 2.8;
  t.wire_r_ohm_per_um = 0.06;
  t.wire_c_ff_per_um = 0.22;
  return t;
}

Technology ibm_018um() {
  Technology t;
  t.name = "ibm-0.18um-cu";
  t.drawn_um = 0.18;
  t.leff_um = 0.12;
  t.vdd_v = 1.8;
  t.unit_inv_cin_ff = 1.4;
  t.wire_r_ohm_per_um = 0.05;  // copper interconnect
  t.wire_c_ff_per_um = 0.19;
  return t;
}

ElectricalLimits default_electrical_limits() { return ElectricalLimits{}; }

ProcessCorner corner_typical() { return {"typical", 1.0}; }

ProcessCorner corner_worst_case() { return {"worst-case", 1.65}; }

ProcessCorner corner_conservative() { return {"conservative", 1.34}; }

ProcessCorner corner_fast_bin() { return {"fast-bin", 0.87}; }

std::optional<Technology> technology_by_name(const std::string& name) {
  if (name == "asic025") return asic_025um();
  if (name == "custom025") return custom_025um();
  if (name == "ibm018") return ibm_018um();
  if (name == "asic035") return asic_035um();
  return std::nullopt;
}

std::vector<std::string> technology_names() {
  return {"asic025", "custom025", "ibm018", "asic035"};
}

std::optional<ProcessCorner> corner_by_name(const std::string& name) {
  if (name == "typical") return corner_typical();
  if (name == "worst") return corner_worst_case();
  if (name == "conservative") return corner_conservative();
  if (name == "fast") return corner_fast_bin();
  return std::nullopt;
}

}  // namespace gap::tech
