#include "obs/expose.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define GAP_OBS_POSIX_IO 1
#include <fcntl.h>
#include <unistd.h>
#else
#define GAP_OBS_POSIX_IO 0
#include <fstream>
#endif

#include "common/json.hpp"

namespace gap::obs {

namespace json = gap::common::json;
using gap::common::Histogram;
using gap::common::HistogramData;
using gap::common::MetricsRegistry;
using gap::common::MetricsSnapshot;

std::string prometheus_name(const std::string& name) {
  std::string out = "gap_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string bucket_upper_edge(int index) {
  if (index >= Histogram::kNumBuckets - 1) return "+Inf";
  return json::number(std::ldexp(1.0, index - Histogram::kUnitBucket + 1));
}

namespace {

void render_histogram(std::string& out, const std::string& name,
                      const HistogramData& h) {
  const std::string p = prometheus_name(name);
  out += "# TYPE " + p + " histogram\n";
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    cum += h.buckets[i];
    out += p + "_bucket{le=\"" + bucket_upper_edge(static_cast<int>(i)) +
           "\"} " + std::to_string(cum) + '\n';
  }
  // The +Inf line is unconditional so `_count` is always reconstructable
  // from the bucket series alone.
  if (h.buckets.empty() || h.buckets.back() == 0)
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + '\n';
  out += p + "_count " + std::to_string(h.count) + '\n';
  out += p + "_clamped " + std::to_string(h.clamped) + '\n';
  out += p + "_min " + json::number(h.min) + '\n';
  out += p + "_max " + json::number(h.max) + '\n';
}

/// One pass over the snapshot, emitting either the deterministic or the
/// wall-prefixed metrics; both passes share the section order
/// counters -> gauges -> histograms, each name-sorted (std::map order).
void render_section(std::string& out, const MetricsSnapshot& s, bool wall) {
  for (const auto& [name, v] : s.counters) {
    if (MetricsRegistry::is_wall_metric(name) != wall) continue;
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + ' ' + std::to_string(v) + '\n';
  }
  for (const auto& [name, v] : s.gauges) {
    if (MetricsRegistry::is_wall_metric(name) != wall) continue;
    const std::string p = prometheus_name(name);
    const double safe = std::isfinite(v) ? v : 0.0;
    out += "# TYPE " + p + " gauge\n";
    out += p + ' ' + json::number(safe) + '\n';
  }
  for (const auto& [name, h] : s.histograms) {
    if (MetricsRegistry::is_wall_metric(name) != wall) continue;
    render_histogram(out, name, h);
  }
}

}  // namespace

std::string expose_text(const MetricsRegistry& reg) {
  const MetricsSnapshot s = reg.snapshot();
  std::string out = kExposeHeader;
  out += '\n';
  render_section(out, s, /*wall=*/false);
  out += kWallMarker;
  out += '\n';
  render_section(out, s, /*wall=*/true);
  return out;
}

std::string deterministic_section(const std::string& exposition) {
  const std::string marker = kWallMarker;
  // Match the marker only at a line start.
  std::size_t pos = exposition.find(marker);
  while (pos != std::string::npos && pos != 0 &&
         exposition[pos - 1] != '\n')
    pos = exposition.find(marker, pos + 1);
  if (pos == std::string::npos) return exposition;
  return exposition.substr(0, pos);
}

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
#if GAP_OBS_POSIX_IO
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  // A snapshot is advisory (the journal is the durability story), but the
  // rename must still never expose a short file: flush before swapping.
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << content << std::flush;
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
#endif
}

}  // namespace gap::obs
