#include "obs/stat_cli.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/expose.hpp"

namespace gap::obs {

namespace json = gap::common::json;

namespace {

constexpr const char* kUsage =
    "usage: gapstat show FILE            [--format text|csv|json]\n"
    "       gapstat diff OLD NEW         [--format text|csv|json] [--strict]\n"
    "       gapstat agg FILE [FILE...]   [--format text|csv|json]\n"
    "\n"
    "Load, diff, and aggregate gap telemetry files: metrics JSON\n"
    "(gapflow --metrics-out), Prometheus exposition text\n"
    "(gapd --expose-out), and gap-flight-v1 flight-recorder dumps.\n"
    "The format of each input is sniffed, so mixed diffs work.\n"
    "See docs/observability.md.\n";

/// How a value combines under `agg` (and renders in `show`).
enum class StatKind { kCounter, kGauge, kMin };

struct StatValue {
  StatKind kind = StatKind::kCounter;
  double value = 0.0;
};

using StatMap = std::map<std::string, StatValue>;

int usage_error(std::ostream& err, const std::string& message) {
  err << "gapstat: error: " << message << '\n' << kUsage;
  return kStatExitUsage;
}

// --- loaders -------------------------------------------------------------

void put(StatMap& m, const std::string& name, StatKind kind, double v) {
  m[name] = StatValue{kind, v};
}

/// {"counters":{..},"gauges":{..},"histograms":{..}} from
/// MetricsRegistry::write_json.
bool load_metrics_json(const json::Value& doc, StatMap& m) {
  const json::Value* counters = doc.find("counters");
  const json::Value* gauges = doc.find("gauges");
  const json::Value* histograms = doc.find("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr)
    return false;
  for (const auto& [name, v] : counters->object)
    put(m, name, StatKind::kCounter, v.number_or(0.0));
  for (const auto& [name, v] : gauges->object)
    put(m, name, StatKind::kGauge, v.number_or(0.0));
  for (const auto& [name, h] : histograms->object) {
    put(m, name + ".count", StatKind::kCounter, h.member_number("count", 0));
    put(m, name + ".clamped", StatKind::kCounter,
        h.member_number("clamped", 0));
    put(m, name + ".min", StatKind::kMin, h.member_number("min", 0));
    put(m, name + ".max", StatKind::kGauge, h.member_number("max", 0));
  }
  return true;
}

/// gap-flight-v1 dump: per-kind event tallies plus the ring accounting.
bool load_flight_json(const json::Value& doc, StatMap& m) {
  const json::Value* events = doc.find("events");
  if (events == nullptr || !events->is_array()) return false;
  put(m, "flight.total", StatKind::kCounter, doc.member_number("total", 0));
  put(m, "flight.dropped", StatKind::kCounter,
      doc.member_number("dropped", 0));
  put(m, "flight.capacity", StatKind::kGauge,
      doc.member_number("capacity", 0));
  std::map<std::string, double> kinds;
  for (const json::Value& ev : events->array)
    kinds[ev.member_string("kind", "unknown")] += 1.0;
  for (const auto& [kind, n] : kinds)
    put(m, "flight.events." + kind, StatKind::kCounter, n);
  return true;
}

/// Prometheus exposition text (expose.hpp). `# TYPE` comments carry the
/// metric kind; histogram series map their plain (label-free) lines.
bool load_exposition(const std::string& text, StatMap& m) {
  std::map<std::string, std::string> type_of;  // prometheus name -> kind
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, word, name, kind;
      if (ls >> hash >> word >> name >> kind && word == "TYPE")
        type_of[name] = kind;
      continue;
    }
    if (line.find('{') != std::string::npos) continue;  // labeled series
    std::istringstream ls(line);
    std::string name;
    double value = 0.0;
    if (!(ls >> name >> value)) return false;
    StatKind kind = StatKind::kGauge;
    if (type_of.count(name) != 0) {
      kind = type_of[name] == "counter" ? StatKind::kCounter
                                        : StatKind::kGauge;
    } else {
      // A histogram's scalar series: <base>_count etc., typed via base.
      const auto ends_with = [&](const char* suffix) {
        const std::string s = suffix;
        return name.size() > s.size() &&
               name.compare(name.size() - s.size(), s.size(), s) == 0;
      };
      if (ends_with("_count") || ends_with("_clamped"))
        kind = StatKind::kCounter;
      else if (ends_with("_min"))
        kind = StatKind::kMin;
    }
    put(m, name, kind, value);
  }
  return true;
}

/// Read and sniff one file. Returns an exit code; 0 on success.
int load_file(const std::string& path, StatMap& m, std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "gapstat: error[io]: cannot read '" << path << "'\n";
    return kStatExitIo;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    err << "gapstat: error[parse]: '" << path << "' is empty\n";
    return kStatExitParse;
  }
  bool ok = false;
  if (text[first] == '#') {
    ok = load_exposition(text, m);
  } else if (text[first] == '{') {
    auto doc = json::Value::parse_checked(text);
    if (!doc.ok()) {
      err << "gapstat: error[parse]: '" << path
          << "': " << doc.status().message() << '\n';
      return kStatExitParse;
    }
    ok = doc->member_string("flight", "") == "gap-flight-v1"
             ? load_flight_json(*doc, m)
             : load_metrics_json(*doc, m);
  }
  if (!ok) {
    err << "gapstat: error[parse]: '" << path
        << "' is not a metrics JSON, exposition, or flight file\n";
    return kStatExitParse;
  }
  return kStatExitOk;
}

// --- rendering -----------------------------------------------------------

enum class Format { kText, kCsv, kJson };

bool parse_format(const std::string& text, Format* out) {
  if (text == "text") *out = Format::kText;
  else if (text == "csv") *out = Format::kCsv;
  else if (text == "json") *out = Format::kJson;
  else return false;
  return true;
}

void render_map(const StatMap& m, Format format, std::ostream& out) {
  if (format == Format::kCsv) out << "name,value\n";
  if (format == Format::kJson) out << '{';
  std::size_t width = 0;
  if (format == Format::kText)
    for (const auto& [name, v] : m) width = std::max(width, name.size());
  bool first = true;
  for (const auto& [name, v] : m) {
    const std::string value = json::number(v.value);
    switch (format) {
      case Format::kText:
        out << name << std::string(width - name.size() + 2, ' ') << value
            << '\n';
        break;
      case Format::kCsv:
        out << name << ',' << value << '\n';
        break;
      case Format::kJson:
        if (!first) out << ',';
        out << '"' << json::escape(name) << "\":" << value;
        break;
    }
    first = false;
  }
  if (format == Format::kJson) out << "}\n";
}

/// Entries present in either map whose values differ (absent = 0).
[[nodiscard]] std::size_t render_diff(const StatMap& a, const StatMap& b,
                                      Format format, std::ostream& out) {
  std::map<std::string, std::pair<double, double>> rows;
  for (const auto& [name, v] : a) rows[name].first = v.value;
  for (const auto& [name, v] : b) rows[name].second = v.value;
  std::size_t differing = 0;
  if (format == Format::kCsv) out << "name,old,new,delta\n";
  if (format == Format::kJson) out << '{';
  bool first = true;
  for (const auto& [name, ab] : rows) {
    if (ab.first == ab.second) continue;
    ++differing;
    const std::string oldv = json::number(ab.first);
    const std::string newv = json::number(ab.second);
    const std::string delta = json::number(ab.second - ab.first);
    switch (format) {
      case Format::kText:
        out << name << "  " << oldv << " -> " << newv << "  (" << delta
            << ")\n";
        break;
      case Format::kCsv:
        out << name << ',' << oldv << ',' << newv << ',' << delta << '\n';
        break;
      case Format::kJson:
        if (!first) out << ',';
        out << '"' << json::escape(name) << "\":{\"old\":" << oldv
            << ",\"new\":" << newv << ",\"delta\":" << delta << '}';
        break;
    }
    first = false;
  }
  if (format == Format::kJson) out << "}\n";
  if (format == Format::kText && differing == 0) out << "no differences\n";
  return differing;
}

void merge_into(StatMap& acc, const StatMap& m) {
  for (const auto& [name, v] : m) {
    auto it = acc.find(name);
    if (it == acc.end()) {
      acc[name] = v;
      continue;
    }
    switch (v.kind) {
      case StatKind::kCounter: it->second.value += v.value; break;
      case StatKind::kGauge:
        it->second.value = std::max(it->second.value, v.value);
        break;
      case StatKind::kMin:
        it->second.value = std::min(it->second.value, v.value);
        break;
    }
  }
}

}  // namespace

int run_gapstat(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err) {
  std::vector<std::string> positional;
  Format format = Format::kText;
  bool strict = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return kStatExitOk;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--format") {
      if (i + 1 >= argc || !parse_format(argv[++i], &format))
        return usage_error(err, "--format needs 'text', 'csv', or 'json'");
    } else if (arg.rfind("--format=", 0) == 0) {
      if (!parse_format(arg.substr(9), &format))
        return usage_error(err, "--format needs 'text', 'csv', or 'json'");
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error(err, "unknown flag '" + arg + "'");
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty())
    return usage_error(err, "missing command (show | diff | agg)");
  const std::string cmd = positional.front();
  positional.erase(positional.begin());

  if (cmd == "show") {
    if (positional.size() != 1)
      return usage_error(err, "show needs exactly one FILE");
    StatMap m;
    if (const int rc = load_file(positional[0], m, err); rc != 0) return rc;
    render_map(m, format, out);
    return kStatExitOk;
  }
  if (cmd == "diff") {
    if (positional.size() != 2)
      return usage_error(err, "diff needs exactly OLD and NEW files");
    StatMap a, b;
    if (const int rc = load_file(positional[0], a, err); rc != 0) return rc;
    if (const int rc = load_file(positional[1], b, err); rc != 0) return rc;
    const std::size_t differing = render_diff(a, b, format, out);
    return strict && differing != 0 ? kStatExitDiff : kStatExitOk;
  }
  if (cmd == "agg") {
    if (positional.empty())
      return usage_error(err, "agg needs at least one FILE");
    StatMap acc;
    for (const std::string& path : positional) {
      StatMap m;
      if (const int rc = load_file(path, m, err); rc != 0) return rc;
      merge_into(acc, m);
    }
    render_map(acc, format, out);
    return kStatExitOk;
  }
  return usage_error(err, "unknown command '" + cmd + "'");
}

}  // namespace gap::obs
