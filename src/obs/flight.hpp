#pragma once
/// \file flight.hpp
/// Always-on flight recorder: a fixed-size lock-free ring of recent
/// structured events (request begin/end, edit rejections, journal fsyncs,
/// degradations, watchdog trips), kept cheap enough to run in production
/// and dumped atomically as `gap-flight-v1` JSON when something goes
/// wrong — on degradation, on SIGTERM, or on an explicit `dump` protocol
/// request (docs/gapd.md). A crashed or misbehaving server thereby leaves
/// evidence beyond the journal.
///
/// Concurrency: record() is wait-free (one fetch_add to claim a slot,
/// then relaxed word stores + a release stamp). snapshot() validates each
/// slot's sequence stamp before and after reading it and skips slots a
/// concurrent writer is overwriting, so readers never block writers and
/// every surviving event is internally consistent. All slot state lives
/// in std::atomic words — clean under ThreadSanitizer by construction.
///
/// Determinism: everything in an event except its wall-clock timestamp is
/// a pure function of the request stream, and flight_json() segregates
/// the timestamps into a trailing "wall" member so the rest of the dump
/// is byte-identical across `--threads` values
/// (flight_deterministic_section()).

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gap::obs {

/// What happened. Renderable names in flight_kind_name().
enum class FlightEventKind : std::uint8_t {
  kRequestBegin = 0,
  kRequestEnd,
  kEditRejected,
  kJournalFsync,
  kDegraded,
  kDeadline,
  kOverloaded,
  kRecovered,
  kDump,
};

/// Stable lower_snake name for a kind ("request_begin", ...).
[[nodiscard]] const char* flight_kind_name(FlightEventKind kind);

/// One decoded ring entry. `detail` is a short label (session name,
/// command) truncated to kDetailBytes.
struct FlightEvent {
  static constexpr std::size_t kDetailBytes = 24;

  std::uint64_t seq = 0;     ///< global record order, from 0
  std::uint64_t req_id = 0;  ///< 0 when outside any request
  FlightEventKind kind = FlightEventKind::kRequestBegin;
  std::uint32_t code = 0;   ///< error/reply code when relevant
  std::uint64_t value = 0;  ///< payload: bytes, counts, ...
  double wall_us = 0.0;     ///< non-deterministic; segregated in dumps
  char detail[kDetailBytes] = {};

  [[nodiscard]] std::string_view detail_view() const;
};

/// The ring. Capacity is rounded up to a power of two; once full, new
/// events overwrite the oldest (dropped() counts the casualties).
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightEventKind kind, std::uint64_t req_id = 0,
              std::uint32_t code = 0, std::uint64_t value = 0,
              std::string_view detail = {}, double wall_us = 0.0);

  /// Decoded surviving events in ascending seq order. Slots mid-overwrite
  /// are skipped, never torn.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Events ever recorded / overwritten by ring wraparound.
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Forget everything (test hook; not safe against concurrent record()).
  void clear();

 private:
  static constexpr std::size_t kWordsPerSlot = 8;

  std::vector<std::atomic<std::uint64_t>> words_;
  std::atomic<std::uint64_t> seq_{0};
  std::size_t mask_ = 0;
};

/// Render events as one line of `gap-flight-v1` JSON (no trailing
/// newline):
///
///   {"flight":"gap-flight-v1","capacity":C,"total":N,"dropped":D,
///    "events":[{"seq":..,"req":..,"kind":"..","code":..,"value":..,
///               "detail":".."},...],"wall":{"us":[..]}}
///
/// "wall".us[i] is events[i]'s timestamp; it is the last member so
/// flight_deterministic_section() can strip it without parsing.
[[nodiscard]] std::string flight_json(const std::vector<FlightEvent>& events,
                                      std::size_t capacity,
                                      std::uint64_t total,
                                      std::uint64_t dropped);
[[nodiscard]] std::string flight_json(const FlightRecorder& rec);

/// A dump minus its trailing "wall" member: the byte-comparable part.
[[nodiscard]] std::string flight_deterministic_section(
    const std::string& dump);

}  // namespace gap::obs
