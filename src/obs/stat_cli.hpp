#pragma once
/// \file stat_cli.hpp
/// Implementation of the `gapstat` telemetry CLI: load, diff, and
/// aggregate the three observability artifacts the service emits —
/// `--metrics-out` JSON, `--expose-out` Prometheus text, and
/// `gap-flight-v1` flight-recorder dumps — without caring which is which
/// (the loader sniffs the format). Lives in the library so the test
/// suite can drive it in-process with captured streams.
///
///   gapstat show FILE            [--format text|csv|json]
///   gapstat diff OLD NEW         [--format text|csv|json] [--strict]
///   gapstat agg FILE [FILE...]   [--format text|csv|json]
///
/// Every input collapses to a sorted name -> value map (histograms
/// contribute their _count/_clamped/_min/_max series; flight dumps
/// contribute per-kind event counts), so files of different formats can
/// be diffed against each other. `agg` merges by metric kind: counters
/// sum, gauges and maxima keep the max, minima keep the min.
///
/// Exit codes (the shared tool vocabulary):
///   0  success (for diff: also "differences found" without --strict)
///   1  diff --strict found differences
///   2  malformed command line
///   4  an input file failed to parse
///   5  an input file could not be read

#include <iosfwd>

namespace gap::obs {

inline constexpr int kStatExitOk = 0;
inline constexpr int kStatExitDiff = 1;
inline constexpr int kStatExitUsage = 2;
inline constexpr int kStatExitParse = 4;
inline constexpr int kStatExitIo = 5;

/// Run gapstat over explicit streams. `argv` excludes the program name
/// (pass argc-1/argv+1 from main).
int run_gapstat(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err);

}  // namespace gap::obs
