#include "obs/flight.hpp"

#include <bit>
#include <cstring>

#include "common/json.hpp"

namespace gap::obs {

namespace json = gap::common::json;

const char* flight_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kRequestBegin: return "request_begin";
    case FlightEventKind::kRequestEnd: return "request_end";
    case FlightEventKind::kEditRejected: return "edit_rejected";
    case FlightEventKind::kJournalFsync: return "journal_fsync";
    case FlightEventKind::kDegraded: return "degraded";
    case FlightEventKind::kDeadline: return "deadline";
    case FlightEventKind::kOverloaded: return "overloaded";
    case FlightEventKind::kRecovered: return "recovered";
    case FlightEventKind::kDump: return "dump";
  }
  return "unknown";
}

std::string_view FlightEvent::detail_view() const {
  std::size_t len = 0;
  while (len < kDetailBytes && detail[len] != '\0') ++len;
  return {detail, len};
}

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  mask_ = cap - 1;
  words_ = std::vector<std::atomic<std::uint64_t>>(cap * kWordsPerSlot);
}

void FlightRecorder::record(FlightEventKind kind, std::uint64_t req_id,
                            std::uint32_t code, std::uint64_t value,
                            std::string_view detail, double wall_us) {
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::atomic<std::uint64_t>* w =
      words_.data() + (seq & mask_) * kWordsPerSlot;

  // Seqlock-style slot protocol: invalidate the stamp, fence so the
  // invalidation cannot sink past the body stores, write the body, then
  // publish the new stamp with release. Readers (snapshot) re-check the
  // stamp around their body reads and skip slots caught mid-write.
  w[0].store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  w[1].store(req_id, std::memory_order_relaxed);
  w[2].store(static_cast<std::uint64_t>(code) << 8 |
                 static_cast<std::uint64_t>(kind),
             std::memory_order_relaxed);
  w[3].store(value, std::memory_order_relaxed);
  w[4].store(std::bit_cast<std::uint64_t>(wall_us),
             std::memory_order_relaxed);
  char buf[FlightEvent::kDetailBytes] = {};
  const std::size_t n = detail.size() < sizeof(buf) ? detail.size()
                                                    : sizeof(buf);
  std::memcpy(buf, detail.data(), n);
  for (std::size_t i = 0; i < 3; ++i) {
    std::uint64_t word = 0;
    std::memcpy(&word, buf + i * 8, 8);
    w[5 + i].store(word, std::memory_order_relaxed);
  }
  w[0].store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t end = seq_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t s = begin; s < end; ++s) {
    const std::atomic<std::uint64_t>* w =
        words_.data() + (s & mask_) * kWordsPerSlot;
    if (w[0].load(std::memory_order_acquire) != s + 1) continue;
    FlightEvent ev;
    ev.seq = s;
    ev.req_id = w[1].load(std::memory_order_relaxed);
    const std::uint64_t kc = w[2].load(std::memory_order_relaxed);
    ev.kind = static_cast<FlightEventKind>(kc & 0xff);
    ev.code = static_cast<std::uint32_t>(kc >> 8);
    ev.value = w[3].load(std::memory_order_relaxed);
    ev.wall_us =
        std::bit_cast<double>(w[4].load(std::memory_order_relaxed));
    for (std::size_t i = 0; i < 3; ++i) {
      const std::uint64_t word = w[5 + i].load(std::memory_order_relaxed);
      std::memcpy(ev.detail + i * 8, &word, 8);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (w[0].load(std::memory_order_relaxed) != s + 1) continue;
    out.push_back(ev);
  }
  return out;
}

std::uint64_t FlightRecorder::total() const {
  return seq_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t n = total();
  const std::uint64_t cap = mask_ + 1;
  return n > cap ? n - cap : 0;
}

void FlightRecorder::clear() {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
}

std::string flight_json(const std::vector<FlightEvent>& events,
                        std::size_t capacity, std::uint64_t total,
                        std::uint64_t dropped) {
  std::string out = "{\"flight\":\"gap-flight-v1\",\"capacity\":";
  out += std::to_string(capacity);
  out += ",\"total\":" + std::to_string(total);
  out += ",\"dropped\":" + std::to_string(dropped);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& ev = events[i];
    if (i != 0) out += ',';
    out += "{\"seq\":" + std::to_string(ev.seq);
    out += ",\"req\":" + std::to_string(ev.req_id);
    out += ",\"kind\":\"";
    out += flight_kind_name(ev.kind);
    out += "\",\"code\":" + std::to_string(ev.code);
    out += ",\"value\":" + std::to_string(ev.value);
    out += ",\"detail\":\"" + json::escape(std::string(ev.detail_view()));
    out += "\"}";
  }
  // The wall member holds every non-deterministic byte of the dump and
  // must stay last: flight_deterministic_section() strips it textually.
  out += "],\"wall\":{\"us\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ',';
    out += json::number(events[i].wall_us);
  }
  out += "]}}";
  return out;
}

std::string flight_json(const FlightRecorder& rec) {
  return flight_json(rec.snapshot(), rec.capacity(), rec.total(),
                     rec.dropped());
}

std::string flight_deterministic_section(const std::string& dump) {
  const std::string key = ",\"wall\":{";
  const std::size_t pos = dump.rfind(key);
  if (pos == std::string::npos) return dump;
  return dump.substr(0, pos) + "}";
}

}  // namespace gap::obs
