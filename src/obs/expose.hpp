#pragma once
/// \file expose.hpp
/// Prometheus-text exposition over common::MetricsRegistry, plus the
/// atomic snapshot writer behind `gapd --expose-out`. The renderer is
/// deliberately boring: stable sorted output, no timestamps, no HELP
/// lines — so two runs that recorded the same metric content produce
/// byte-identical text.
///
/// The one sanctioned exception to the determinism contract
/// (docs/observability.md) is the wall section: metrics whose registry
/// name starts with "wall." (latency histograms, pool dispatch tallies)
/// are emitted *after* a fixed marker line, so consumers that byte-compare
/// exposition across `--threads` values strip everything from the marker
/// on (deterministic_section()).
///
/// Name mapping: registry names are dotted ("serve.req.frame_bytes");
/// exposition names are the Prometheus-safe "gap_" + name with every
/// non-[A-Za-z0-9_] byte replaced by '_' (prometheus_name()). Histograms
/// expand to the conventional series: cumulative `_bucket{le="..."}`
/// lines (upper edges are exact powers of two — bucket_upper_edge()),
/// `_count`, `_clamped` (negative samples clamped to zero), and `_min` /
/// `_max` gauges. There is no `_sum`: a float running sum would depend on
/// addition order and break the thread-count byte-identity contract.

#include <string>

#include "common/metrics.hpp"

namespace gap::obs {

/// First line of every exposition dump; identifies the format to gapstat.
inline constexpr const char* kExposeHeader = "# gap-expose-v1";

/// Marker separating deterministic metrics from the wall-clock section.
inline constexpr const char* kWallMarker =
    "# --- wall section (non-deterministic) ---";

/// Prometheus-safe metric name: "gap_" + name, non-[A-Za-z0-9_] -> '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Upper bucket edge (the `le` label) for histogram bucket `index`:
/// 2^(index - kUnitBucket + 1), rendered exactly; the last bucket is
/// "+Inf". Matches common::Histogram::bucket_of.
[[nodiscard]] std::string bucket_upper_edge(int index);

/// Render the registry in Prometheus text format: deterministic metrics
/// first (sorted by name within counters, gauges, histograms), then the
/// wall marker, then the "wall." metrics in the same order.
[[nodiscard]] std::string expose_text(const common::MetricsRegistry& reg);

/// Everything up to (excluding) the wall marker line: the byte-comparable
/// part of an exposition dump. Text without a marker passes through.
[[nodiscard]] std::string deterministic_section(const std::string& exposition);

/// Write `content` to `path` atomically: a same-directory temp file,
/// flushed, then rename()d over the target, so a reader never observes a
/// half-written snapshot. False on any I/O failure (temp file removed).
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     const std::string& content);

}  // namespace gap::obs
