#include "floorplan/floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace gap::floorplan {
namespace {

struct Dims {
  double w, h;
};

/// Sequence-pair state: two permutations plus per-module rotation.
struct SpState {
  std::vector<int> gp;  ///< Gamma+ (module indices in sequence order)
  std::vector<int> gn;  ///< Gamma-
  std::vector<bool> rotated;
};

/// Evaluate a sequence pair into placed rectangles (longest-path packing).
std::vector<PlacedModule> evaluate(const SpState& s,
                                   const std::vector<Dims>& dims) {
  const std::size_t n = s.gp.size();
  std::vector<int> pos_gp(n), pos_gn(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos_gp[static_cast<std::size_t>(s.gp[i])] = static_cast<int>(i);
    pos_gn[static_cast<std::size_t>(s.gn[i])] = static_cast<int>(i);
  }
  auto dim = [&](std::size_t m) {
    Dims d = dims[m];
    if (s.rotated[m]) std::swap(d.w, d.h);
    return d;
  };

  std::vector<PlacedModule> placed(n);
  // a left-of b <=> a before b in both sequences.
  for (std::size_t bi = 0; bi < n; ++bi) {
    const auto b = static_cast<std::size_t>(s.gp[bi]);
    double x = 0.0;
    for (std::size_t ai = 0; ai < bi; ++ai) {
      const auto a = static_cast<std::size_t>(s.gp[ai]);
      if (pos_gn[a] < pos_gn[b]) x = std::max(x, placed[a].x_um + dim(a).w);
    }
    placed[b].x_um = x;
    placed[b].w_um = dim(b).w;
    placed[b].h_um = dim(b).h;
  }
  // a below b <=> a after b in Gamma+ and a before b in Gamma-.
  for (std::size_t bi = n; bi-- > 0;) {
    const auto b = static_cast<std::size_t>(s.gp[bi]);
    double y = 0.0;
    for (std::size_t ai = bi + 1; ai < n; ++ai) {
      const auto a = static_cast<std::size_t>(s.gp[ai]);
      if (pos_gn[a] < pos_gn[b]) y = std::max(y, placed[a].y_um + dim(a).h);
    }
    placed[b].y_um = y;
  }
  return placed;
}

struct Cost {
  double area;
  double wl;
  double die_w, die_h;
};

Cost cost_of(const std::vector<PlacedModule>& placed,
             const std::vector<ModuleNet>& nets) {
  Cost c{0.0, 0.0, 0.0, 0.0};
  for (const PlacedModule& m : placed) {
    c.die_w = std::max(c.die_w, m.x_um + m.w_um);
    c.die_h = std::max(c.die_h, m.y_um + m.h_um);
  }
  c.area = c.die_w * c.die_h;
  c.wl = wirelength(placed, nets);
  return c;
}

}  // namespace

double wirelength(const std::vector<PlacedModule>& placed,
                  const std::vector<ModuleNet>& nets) {
  double total = 0.0;
  for (const ModuleNet& net : nets) {
    if (net.modules.size() < 2) continue;
    double x0 = 1e30, x1 = -1e30, y0 = 1e30, y1 = -1e30;
    for (ModuleId m : net.modules) {
      const PlacedModule& p = placed[m.index()];
      x0 = std::min(x0, p.cx());
      x1 = std::max(x1, p.cx());
      y0 = std::min(y0, p.cy());
      y1 = std::max(y1, p.cy());
    }
    total += net.weight * ((x1 - x0) + (y1 - y0));
  }
  return total;
}

FloorplanResult floorplan(const std::vector<Module>& modules,
                          const std::vector<ModuleNet>& nets,
                          const FloorplanOptions& options) {
  GAP_EXPECTS(!modules.empty());
  const std::size_t n = modules.size();
  std::vector<Dims> dims(n);
  for (std::size_t i = 0; i < n; ++i) {
    GAP_EXPECTS(modules[i].area_um2 > 0.0);
    const double w = std::sqrt(modules[i].area_um2 * modules[i].aspect);
    dims[i] = {w, modules[i].area_um2 / w};
  }

  Rng rng(options.seed);
  SpState state;
  state.gp.resize(n);
  state.gn.resize(n);
  state.rotated.assign(n, false);
  for (std::size_t i = 0; i < n; ++i)
    state.gp[i] = state.gn[i] = static_cast<int>(i);

  auto placed = evaluate(state, dims);
  Cost cur = cost_of(placed, nets);
  const double area0 = std::max(cur.area, 1.0);
  const double wl0 = std::max(cur.wl, 1.0);
  auto scalar = [&](const Cost& c) {
    return options.area_weight * c.area / area0 +
           options.wirelength_weight * c.wl / wl0;
  };

  double cur_cost = scalar(cur);
  SpState best_state = state;
  double best_cost = cur_cost;

  double temp = options.initial_temp_scale * std::max(cur_cost, 1e-9);
  const double cooling =
      std::pow(1e-3, 1.0 / std::max(1, options.sa_moves));  // to 0.1% of T0

  for (int move = 0; move < options.sa_moves; ++move) {
    SpState next = state;
    const int kind = static_cast<int>(rng.uniform_index(3));
    const auto i = static_cast<std::size_t>(rng.uniform_index(n));
    auto j = static_cast<std::size_t>(rng.uniform_index(n));
    if (n > 1)
      while (j == i) j = static_cast<std::size_t>(rng.uniform_index(n));
    switch (kind) {
      case 0:
        std::swap(next.gp[i], next.gp[j]);
        break;
      case 1:
        std::swap(next.gp[i], next.gp[j]);
        std::swap(next.gn[i], next.gn[j]);
        break;
      default:
        next.rotated[i] = !next.rotated[i];
        break;
    }
    const auto next_placed = evaluate(next, dims);
    const double next_cost = scalar(cost_of(next_placed, nets));
    const double delta = next_cost - cur_cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      state = std::move(next);
      cur_cost = next_cost;
      if (cur_cost < best_cost) {
        best_cost = cur_cost;
        best_state = state;
      }
    }
    temp *= cooling;
  }

  FloorplanResult r;
  r.modules = evaluate(best_state, dims);
  const Cost final_cost = cost_of(r.modules, nets);
  r.die_w_um = final_cost.die_w;
  r.die_h_um = final_cost.die_h;
  r.total_wirelength_um = final_cost.wl;
  return r;
}

}  // namespace gap::floorplan
