#pragma once
/// \file floorplan.hpp
/// Chip-level floorplanning (section 5: "custom ICs are typically manually
/// floorplanned; a number of tools are now reaching the ASIC market").
/// Modules are placed by simulated annealing over the sequence-pair
/// representation (Murata et al.), minimizing a weighted sum of bounding
/// area and module-level net wirelength. The result assigns each module a
/// rectangle; gap::place then arranges cells inside their module.

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

namespace gap::floorplan {

struct Module {
  std::string name;
  double area_um2 = 0.0;
  double aspect = 1.0;  ///< initial width/height ratio
};

/// A module-level net: connects a set of modules with a weight (signal
/// count between the modules).
struct ModuleNet {
  std::vector<ModuleId> modules;
  double weight = 1.0;
};

struct PlacedModule {
  double x_um = 0.0;  ///< lower-left corner
  double y_um = 0.0;
  double w_um = 0.0;
  double h_um = 0.0;

  [[nodiscard]] double cx() const { return x_um + w_um / 2.0; }
  [[nodiscard]] double cy() const { return y_um + h_um / 2.0; }
};

struct FloorplanResult {
  std::vector<PlacedModule> modules;  ///< indexed by ModuleId
  double die_w_um = 0.0;
  double die_h_um = 0.0;
  double total_wirelength_um = 0.0;  ///< weighted HPWL over module nets

  [[nodiscard]] double die_area_mm2() const {
    return die_w_um * die_h_um * 1e-6;
  }
};

struct FloorplanOptions {
  double area_weight = 1.0;
  double wirelength_weight = 1.0;
  int sa_moves = 20000;
  double initial_temp_scale = 0.3;  ///< initial T as fraction of initial cost
  std::uint64_t seed = 1;
};

/// Run the annealer. Modules are indexed by their position in `modules`
/// (ModuleId{i} refers to modules[i]).
[[nodiscard]] FloorplanResult floorplan(const std::vector<Module>& modules,
                                        const std::vector<ModuleNet>& nets,
                                        const FloorplanOptions& options);

/// Weighted HPWL of the module nets for a given placement.
[[nodiscard]] double wirelength(const std::vector<PlacedModule>& placed,
                                const std::vector<ModuleNet>& nets);

}  // namespace gap::floorplan
