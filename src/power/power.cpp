#include "power/power.hpp"

#include "common/check.hpp"
#include "library/library.hpp"

namespace gap::power {

PowerReport estimate_power(const netlist::Netlist& nl,
                           const PowerOptions& options) {
  GAP_EXPECTS(options.freq_mhz > 0.0);
  const tech::Technology& t = nl.lib().technology();
  const auto activity = estimate_activity(nl, options.activity);

  const double vdd2 = t.vdd_v * t.vdd_v;
  const double f_hz = options.freq_mhz * 1e6;
  // P[mW] = 0.5 * alpha * C[fF] * V^2 * f[Hz] * 1e-12.
  auto switch_mw = [&](double alpha, double cap_ff) {
    return 0.5 * alpha * cap_ff * vdd2 * f_hz * 1e-12;
  };

  PowerReport r;
  for (NetId nid : nl.all_nets()) {
    const double cap_ff = nl.net_load(nid) * t.unit_inv_cin_ff;
    r.dynamic_mw += switch_mw(activity[nid.index()], cap_ff);
  }
  r.dynamic_mw *= 1.0 + options.short_circuit_fraction;

  for (InstanceId id : nl.all_instances()) {
    const library::Cell& c = nl.cell_of(id);
    const double drive = nl.drive_of(id);
    const bool clocked =
        c.is_sequential() || c.family == library::Family::kDomino;
    if (clocked) {
      // The clock toggles twice per cycle into every clocked pin.
      const double clk_cap_ff =
          options.clock_pin_cap_units * drive * t.unit_inv_cin_ff;
      r.clock_mw += switch_mw(2.0, clk_cap_ff);
    }
    if (c.family == library::Family::kDomino && !c.is_sequential()) {
      // The dynamic node precharges high and (with random data) evaluates
      // low about half the time: roughly one full swing per cycle on the
      // internal node, sized with the gate.
      const double node_cap_ff = 0.5 * drive * t.unit_inv_cin_ff;
      r.precharge_mw += switch_mw(1.0, node_cap_ff);
    }
    const double width =
        drive * library::traits(c.func).num_transistors;
    r.leakage_mw += options.leakage_nw_per_width * width * 1e-6;
  }
  return r;
}

}  // namespace gap::power
