#pragma once
/// \file activity.hpp
/// Switching-activity estimation by random-vector simulation: the toggle
/// density of every net under random primary-input stimulus. Power is the
/// second axis of the paper's comparison (section 2: the 750 MHz Alpha
/// burns 90 W where the 1 GHz PowerPC needs 6.3 W; section 7: "dynamic
/// logic has higher power consumption").

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace gap::power {

struct ActivityOptions {
  int rounds = 16;           ///< 64 vectors per round
  std::uint64_t seed = 1;
  /// Toggle probability assumed for primary inputs (0.5 = fully random
  /// data; control-dominated blocks are lower).
  double input_toggle = 0.5;
};

/// Toggle density per net: expected transitions per clock cycle, indexed
/// by NetId. Sequential outputs toggle at their D-input's density (one
/// update per cycle); combinational nets include glitch-free switching
/// only (a documented first-order approximation).
[[nodiscard]] std::vector<double> estimate_activity(
    const netlist::Netlist& nl, const ActivityOptions& options);

}  // namespace gap::power
