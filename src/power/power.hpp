#pragma once
/// \file power.hpp
/// Power estimation for implemented netlists:
///   dynamic  = 0.5 * alpha * C * Vdd^2 * f    per net,
///   clocking = flop/latch/domino clock-pin capacitance at alpha = 2,
///   domino   = precharge activity on dynamic nodes (~every cycle),
///   leakage  = per-transistor-width constant.
/// This supports the paper's power observations: section 2's Alpha
/// (90 W, domino, 2.25 cm^2) vs IBM PowerPC (6.3 W, 0.098 cm^2), and
/// section 7's "dynamic logic has higher power consumption".

#include "power/activity.hpp"

namespace gap::power {

struct PowerOptions {
  double freq_mhz = 100.0;
  ActivityOptions activity;

  /// Clock-pin input capacitance of a sequential or domino cell, in unit
  /// input capacitances per unit drive.
  double clock_pin_cap_units = 0.5;
  /// Leakage per transistor-width unit (drive x transistor count), in nW.
  double leakage_nw_per_width = 2.0;
  /// Short-circuit current adder as a fraction of dynamic power.
  double short_circuit_fraction = 0.10;
};

struct PowerReport {
  double dynamic_mw = 0.0;   ///< data switching
  double clock_mw = 0.0;     ///< clock tree load (sequential + domino)
  double precharge_mw = 0.0; ///< domino dynamic-node precharge
  double leakage_mw = 0.0;

  [[nodiscard]] double total_mw() const {
    return dynamic_mw + clock_mw + precharge_mw + leakage_mw;
  }
};

/// Estimate the power of an implemented netlist at the given frequency.
[[nodiscard]] PowerReport estimate_power(const netlist::Netlist& nl,
                                         const PowerOptions& options);

}  // namespace gap::power
