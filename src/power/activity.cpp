#include "power/activity.hpp"

#include <bit>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "netlist/simulate.hpp"

namespace gap::power {
namespace {

/// A 64-cycle Markov bit stream with per-cycle flip probability p.
std::uint64_t markov_stream(Rng& rng, double p) {
  std::uint64_t v = rng.bernoulli(0.5) ? 1u : 0u;
  for (int i = 1; i < 64; ++i) {
    const std::uint64_t prev = (v >> (i - 1)) & 1u;
    const std::uint64_t bit = rng.bernoulli(p) ? prev ^ 1u : prev;
    v |= bit << i;
  }
  return v;
}

}  // namespace

std::vector<double> estimate_activity(const netlist::Netlist& nl,
                                      const ActivityOptions& options) {
  GAP_EXPECTS(options.rounds > 0);
  GAP_EXPECTS(options.input_toggle >= 0.0 && options.input_toggle <= 1.0);
  Rng rng(options.seed);

  std::size_t n_in = 0;
  for (PortId p : nl.all_ports())
    if (nl.port(p).is_input) ++n_in;

  std::vector<double> toggles(nl.num_nets(), 0.0);
  for (int round = 0; round < options.rounds; ++round) {
    std::vector<std::uint64_t> pi(n_in);
    for (auto& v : pi) v = markov_stream(rng, options.input_toggle);
    const auto values = netlist::simulate_all_nets(nl, pi);
    for (std::size_t i = 0; i < values.size(); ++i) {
      // Adjacent bits are consecutive cycles: 63 transitions per word.
      const std::uint64_t x = values[i] ^ (values[i] >> 1);
      toggles[i] += static_cast<double>(std::popcount(x & ~(1ull << 63)));
    }
  }
  const double cycles = 63.0 * options.rounds;
  for (double& t : toggles) t /= cycles;
  return toggles;
}

}  // namespace gap::power
