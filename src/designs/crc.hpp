#pragma once
/// \file crc.hpp
/// CRC-16-CCITT (polynomial 0x1021) over a 32-bit message word, unrolled
/// combinationally from a 16-bit running state. A pure XOR network with a
/// long serial structure: the opposite workload to the FIR — synthesis
/// produces deep logic and, unlike the bus controller, it *can* be
/// restructured/pipelined because XOR is associative.

#include "logic/aig.hpp"

namespace gap::designs {

inline constexpr int kCrcStateBits = 16;
inline constexpr int kCrcMessageBits = 32;

/// PIs: state[16], msg[32] (consumed MSB first). POs: next_state[16].
[[nodiscard]] logic::Aig make_crc_aig();

/// Reference model: CRC-16-CCITT update of `state` by the 32-bit message.
[[nodiscard]] std::uint64_t crc_reference(std::uint64_t state,
                                          std::uint64_t msg);

}  // namespace gap::designs
