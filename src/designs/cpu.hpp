#pragma once
/// \file cpu.hpp
/// A single-issue CPU datapath core in the style of the paper's reference
/// processors (Xtensa: 5-stage single issue; PowerPC: 4-stage). The core
/// is built combinational — decode, operand select, execute (ALU),
/// memory align, writeback select — and gap::pipeline cuts it into the
/// stage count of the configuration under study. Register-file read data
/// and load data arrive as PIs (the register file and memory are outside
/// the core, as in any datapath timing model).

#include "designs/alu.hpp"
#include "logic/aig.hpp"

namespace gap::designs {

struct CpuOptions {
  int width = 32;
  DatapathStyle style = DatapathStyle::kSynthesized;
};

/// PIs: instr[16], rs_data[w], rt_data[w], load_data[w].
/// POs: wb_data[w], mem_addr[w], take_branch.
[[nodiscard]] logic::Aig make_cpu_datapath_aig(const CpuOptions& options);

}  // namespace gap::designs
