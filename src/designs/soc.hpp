#pragma once
/// \file soc.hpp
/// A small multi-module system-on-chip: ALU, MAC, CPU datapath and bus
/// controller blocks chained through register ranks, with module tags on
/// every instance. This is the substrate for the *chip-level*
/// floorplanning experiments of section 5 — a single block cannot show
/// what happens when related logic lands in far-apart modules, but a
/// system of blocks can.

#include "designs/alu.hpp"
#include "floorplan/floorplan.hpp"
#include "netlist/netlist.hpp"

namespace gap::designs {

struct SocBlockInfo {
  std::string name;
  ModuleId module;
  std::size_t instances = 0;
  double area_um2 = 0.0;
};

struct SocResult {
  netlist::Netlist nl;
  std::vector<SocBlockInfo> blocks;
  /// Floorplanning view: one Module per block (area inflated to the
  /// placement utilization) and the inter-module connectivity.
  std::vector<floorplan::Module> modules;
  std::vector<floorplan::ModuleNet> module_nets;
};

/// Build the SoC netlist in `lib`: blocks are technology-mapped, tagged
/// with their ModuleId, and connected in a registered chain (each block
/// is a pipeline stage of the system). `utilization` sets the module
/// rectangle area relative to raw cell area; `module_area_scale`
/// inflates each block's footprint to account for the embedded memories
/// and local interconnect real blocks carry (our toy blocks are pure
/// logic, far smaller than the mm^2-class modules of section 5's
/// 100 mm^2 chip).
[[nodiscard]] SocResult make_soc(const library::CellLibrary& lib,
                                 DatapathStyle style,
                                 double utilization = 0.7,
                                 double module_area_scale = 60.0);

}  // namespace gap::designs
