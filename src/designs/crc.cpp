#include "designs/crc.hpp"

#include <string>

#include "common/check.hpp"

namespace gap::designs {

using logic::Aig;
using logic::Lit;

logic::Aig make_crc_aig() {
  Aig aig;
  std::vector<Lit> crc;
  for (int i = 0; i < kCrcStateBits; ++i)
    crc.push_back(aig.create_pi("state" + std::to_string(i)));
  std::vector<Lit> msg;
  for (int i = 0; i < kCrcMessageBits; ++i)
    msg.push_back(aig.create_pi("msg" + std::to_string(i)));

  // Bit-serial CRC unrolled: consume message bits MSB first.
  for (int b = kCrcMessageBits - 1; b >= 0; --b) {
    const Lit fb = aig.create_xor(crc[kCrcStateBits - 1],
                                  msg[static_cast<std::size_t>(b)]);
    std::vector<Lit> next(kCrcStateBits);
    for (int i = kCrcStateBits - 1; i >= 1; --i)
      next[static_cast<std::size_t>(i)] = crc[static_cast<std::size_t>(i - 1)];
    next[0] = fb;
    // Polynomial 0x1021: taps at bits 12 and 5 (bit 0 handled above).
    next[12] = aig.create_xor(next[12], fb);
    next[5] = aig.create_xor(next[5], fb);
    crc = std::move(next);
  }
  for (int i = 0; i < kCrcStateBits; ++i)
    aig.add_po(crc[static_cast<std::size_t>(i)], "next" + std::to_string(i));
  return aig;
}

std::uint64_t crc_reference(std::uint64_t state, std::uint64_t msg) {
  std::uint64_t crc = state & 0xFFFF;
  for (int b = kCrcMessageBits - 1; b >= 0; --b) {
    const std::uint64_t bit = (msg >> b) & 1u;
    const std::uint64_t fb = ((crc >> 15) & 1u) ^ bit;
    crc = (crc << 1) & 0xFFFF;
    if (fb) crc ^= 0x1021;
  }
  return crc;
}

}  // namespace gap::designs
