#pragma once
/// \file bus_controller.hpp
/// A bus-interface controller FSM — the paper's example of a design that
/// cannot be pipelined (section 4.1: "many designs, such as bus
/// interfaces, have a tight interaction with their environment in which
/// each execution cycle depends on new primary inputs and branches are
/// common"). The combinational core computes next-state and outputs; the
/// current state arrives as PIs (it is held in registers outside the
/// core), so every cycle genuinely depends on fresh inputs.

#include "logic/aig.hpp"

namespace gap::designs {

inline constexpr int kBusStateBits = 4;
inline constexpr int kBusInputBits = 6;
inline constexpr int kBusOutputBits = 5;

/// PIs: state[4], in[6] (req, wr, ack, err, burst, last).
/// POs: next_state[4], out[5] (grant, addr_en, data_en, resp_ok, resp_err).
[[nodiscard]] logic::Aig make_bus_controller_aig();

}  // namespace gap::designs
