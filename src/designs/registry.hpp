#pragma once
/// \file registry.hpp
/// Named design registry used by benches and examples.

#include <string>
#include <vector>

#include "designs/alu.hpp"
#include "logic/aig.hpp"

namespace gap::designs {

/// Names accepted by make_design.
[[nodiscard]] std::vector<std::string> design_names();

/// Build a design by name: "alu32", "alu16", "mac16", "mac8",
/// "bus_controller", "cpu32", "cpu16".
[[nodiscard]] logic::Aig make_design(const std::string& name,
                                     DatapathStyle style);

}  // namespace gap::designs
