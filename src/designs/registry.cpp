#include "designs/registry.hpp"

#include "common/check.hpp"
#include "designs/bus_controller.hpp"
#include "designs/cpu.hpp"
#include "designs/crc.hpp"
#include "designs/fir.hpp"
#include "designs/mac.hpp"

namespace gap::designs {

std::vector<std::string> design_names() {
  return {"alu32", "alu16", "mac16", "mac8", "bus_controller", "cpu32",
          "cpu16", "fir8", "crc32"};
}

logic::Aig make_design(const std::string& name, DatapathStyle style) {
  if (name == "alu32") return make_alu_aig(32, style);
  if (name == "alu16") return make_alu_aig(16, style);
  if (name == "mac16") return make_mac_aig(16, style);
  if (name == "mac8") return make_mac_aig(8, style);
  if (name == "bus_controller") return make_bus_controller_aig();
  if (name == "cpu32") return make_cpu_datapath_aig({32, style});
  if (name == "cpu16") return make_cpu_datapath_aig({16, style});
  if (name == "fir8") return make_fir_aig(style);
  if (name == "crc32") return make_crc_aig();
  GAP_EXPECTS(false);
  return logic::Aig{};
}

}  // namespace gap::designs
