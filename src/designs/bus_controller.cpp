#include "designs/bus_controller.hpp"

#include <string>
#include <vector>

#include "common/check.hpp"

namespace gap::designs {

using logic::Aig;
using logic::Lit;

namespace {

/// One-hot state decode from the 4-bit encoded state.
std::vector<Lit> decode_state(Aig& aig, const std::vector<Lit>& s) {
  std::vector<Lit> one_hot;
  for (unsigned code = 0; code < 9; ++code) {
    std::vector<Lit> terms;
    for (int b = 0; b < kBusStateBits; ++b) {
      const Lit bit = s[static_cast<std::size_t>(b)];
      terms.push_back((code >> b) & 1u ? bit : !bit);
    }
    one_hot.push_back(aig.create_and_n(terms));
  }
  return one_hot;
}

/// Encode a next-state code under a condition: contributes `cond` to each
/// set bit of the code.
void encode_into(std::vector<std::vector<Lit>>& bit_terms, unsigned code,
                 Lit cond) {
  for (int b = 0; b < kBusStateBits; ++b)
    if ((code >> b) & 1u) bit_terms[static_cast<std::size_t>(b)].push_back(cond);
}

}  // namespace

logic::Aig make_bus_controller_aig() {
  Aig aig;
  std::vector<Lit> state;
  for (int i = 0; i < kBusStateBits; ++i)
    state.push_back(aig.create_pi("state" + std::to_string(i)));
  const Lit req = aig.create_pi("req");
  const Lit wr = aig.create_pi("wr");
  const Lit ack = aig.create_pi("ack");
  const Lit err = aig.create_pi("err");
  const Lit burst = aig.create_pi("burst");
  const Lit last = aig.create_pi("last");

  // States: 0 IDLE, 1 GRANT, 2 ADDR, 3 WAIT_W, 4 WAIT_R, 5 DATA_W,
  // 6 DATA_R, 7 RESP, 8 ERROR.
  enum : unsigned {
    kIdle = 0,
    kGrant = 1,
    kAddr = 2,
    kWaitW = 3,
    kWaitR = 4,
    kDataW = 5,
    kDataR = 6,
    kResp = 7,
    kError = 8,
  };
  const std::vector<Lit> st = decode_state(aig, state);

  std::vector<std::vector<Lit>> next_bits(kBusStateBits);
  auto go = [&](unsigned from, Lit cond, unsigned to) {
    encode_into(next_bits, to, aig.create_and(st[from], cond));
  };
  const Lit t = logic::lit_true();

  go(kIdle, req, kGrant);
  go(kIdle, !req, kIdle);
  go(kGrant, t, kAddr);
  go(kAddr, err, kError);
  go(kAddr, aig.create_and(!err, wr), kWaitW);
  go(kAddr, aig.create_and(!err, !wr), kWaitR);
  go(kWaitW, ack, kDataW);
  go(kWaitW, aig.create_and(!ack, !err), kWaitW);
  go(kWaitW, aig.create_and(!ack, err), kError);
  go(kWaitR, ack, kDataR);
  go(kWaitR, aig.create_and(!ack, !err), kWaitR);
  go(kWaitR, aig.create_and(!ack, err), kError);
  // Burst transfers loop through DATA until `last`.
  go(kDataW, aig.create_and(burst, !last), kDataW);
  go(kDataW, aig.create_or(!burst, last), kResp);
  go(kDataR, aig.create_and(burst, !last), kDataR);
  go(kDataR, aig.create_or(!burst, last), kResp);
  go(kResp, req, kGrant);
  go(kResp, !req, kIdle);
  go(kError, t, kIdle);

  for (int b = 0; b < kBusStateBits; ++b)
    aig.add_po(aig.create_or_n(next_bits[static_cast<std::size_t>(b)]),
               "next" + std::to_string(b));

  // Moore-ish outputs with a data-qualified twist.
  const Lit in_data = aig.create_or(st[kDataW], st[kDataR]);
  aig.add_po(aig.create_or(st[kGrant], in_data), "grant");
  aig.add_po(st[kAddr], "addr_en");
  aig.add_po(aig.create_and(in_data, ack), "data_en");
  aig.add_po(aig.create_and(st[kResp], !err), "resp_ok");
  aig.add_po(aig.create_or(st[kError], aig.create_and(st[kResp], err)),
             "resp_err");
  return aig;
}

}  // namespace gap::designs
