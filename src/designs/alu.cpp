#include "designs/alu.hpp"

#include <string>

#include "common/check.hpp"
#include "datapath/shifters.hpp"

namespace gap::designs {

using datapath::AdderKind;
using logic::Aig;
using logic::Lit;

logic::Aig make_alu_aig(int width, DatapathStyle style) {
  GAP_EXPECTS(width >= 4);
  Aig aig;
  std::vector<Lit> a, b, op;
  for (int i = 0; i < width; ++i)
    a.push_back(aig.create_pi("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(aig.create_pi("b" + std::to_string(i)));
  for (int i = 0; i < 3; ++i)
    op.push_back(aig.create_pi("op" + std::to_string(i)));

  // Decode a few opcode terms.
  const Lit is_sub = aig.create_and(
      op[0], aig.create_and(!op[1], !op[2]));  // op == 001

  // Adder shared by add/sub: b xor sub, carry-in = sub.
  std::vector<Lit> b_eff;
  for (int i = 0; i < width; ++i)
    b_eff.push_back(aig.create_xor(b[static_cast<std::size_t>(i)], is_sub));
  const AdderKind add_kind = style == DatapathStyle::kMacro
                                 ? AdderKind::kKoggeStone
                                 : AdderKind::kRipple;
  const datapath::AdderResult sum =
      datapath::build_adder(aig, add_kind, a, b_eff, is_sub);

  // Logic ops.
  std::vector<Lit> and_r, or_r, xor_r;
  for (int i = 0; i < width; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    and_r.push_back(aig.create_and(a[iu], b[iu]));
    or_r.push_back(aig.create_or(a[iu], b[iu]));
    xor_r.push_back(aig.create_xor(a[iu], b[iu]));
  }

  // Shift left by the low bits of b.
  int shift_bits = 0;
  while ((1 << shift_bits) < width) ++shift_bits;
  std::vector<Lit> amount(b.begin(), b.begin() + shift_bits);
  const std::vector<Lit> shl = datapath::build_barrel_shifter(aig, a, amount);

  // Comparisons.
  const Lit slt = style == DatapathStyle::kMacro
                      ? datapath::build_less_than_tree(aig, a, b)
                      : datapath::build_less_than(aig, a, b);
  const Lit eq = datapath::build_equal(aig, a, b);

  // Result selection: three mux levels on the opcode bits.
  for (int i = 0; i < width; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const Lit slt_bit = i == 0 ? slt : logic::lit_false();
    const Lit eq_bit = i == 0 ? eq : logic::lit_false();
    // op2 == 0: {add/sub, and, or, xor? -> op index 0..3}
    const Lit lo0 = aig.create_mux(op[0], sum.sum[iu], sum.sum[iu]);  // add|sub
    const Lit lo1 = aig.create_mux(op[0], or_r[iu], and_r[iu]);      // and|or
    const Lit lo = aig.create_mux(op[1], lo1, lo0);
    // op2 == 1: {xor, shl, slt, eq}
    const Lit hi0 = aig.create_mux(op[0], shl[iu], xor_r[iu]);   // xor|shl
    const Lit hi1 = aig.create_mux(op[0], eq_bit, slt_bit);      // slt|eq
    const Lit hi = aig.create_mux(op[1], hi1, hi0);
    aig.add_po(aig.create_mux(op[2], hi, lo), "r" + std::to_string(i));
  }
  return aig;
}

std::uint64_t alu_reference(AluOp op, std::uint64_t a, std::uint64_t b,
                            int width) {
  const std::uint64_t mask =
      width >= 64 ? ~0ull : (1ull << width) - 1;
  a &= mask;
  b &= mask;
  int shift_bits = 0;
  while ((1 << shift_bits) < width) ++shift_bits;
  const std::uint64_t shamt = b & ((1ull << shift_bits) - 1);
  switch (op) {
    case AluOp::kAdd: return (a + b) & mask;
    case AluOp::kSub: return (a - b) & mask;
    case AluOp::kAnd: return a & b;
    case AluOp::kOr: return a | b;
    case AluOp::kXor: return a ^ b;
    case AluOp::kShl: return (a << shamt) & mask;
    case AluOp::kSlt: return a < b ? 1 : 0;
    case AluOp::kEq: return a == b ? 1 : 0;
  }
  return 0;
}

}  // namespace gap::designs
