#pragma once
/// \file mac.hpp
/// Multiply-accumulate core: p = a * b + acc — the classic DSP datapath
/// that benefits most from pipelining and macro cells (sections 4.2, 7.2).

#include "designs/alu.hpp"
#include "logic/aig.hpp"

namespace gap::designs {

/// PIs: a[width], b[width], acc[2*width]. POs: out[2*width].
[[nodiscard]] logic::Aig make_mac_aig(int width, DatapathStyle style);

}  // namespace gap::designs
