#include "designs/cpu.hpp"

#include <string>

#include "common/check.hpp"
#include "datapath/adders.hpp"
#include "datapath/shifters.hpp"

namespace gap::designs {

using datapath::AdderKind;
using logic::Aig;
using logic::Lit;

logic::Aig make_cpu_datapath_aig(const CpuOptions& options) {
  const int w = options.width;
  GAP_EXPECTS(w >= 8);
  Aig aig;

  std::vector<Lit> instr, rs, rt, load;
  for (int i = 0; i < 16; ++i)
    instr.push_back(aig.create_pi("instr" + std::to_string(i)));
  for (int i = 0; i < w; ++i)
    rs.push_back(aig.create_pi("rs" + std::to_string(i)));
  for (int i = 0; i < w; ++i)
    rt.push_back(aig.create_pi("rt" + std::to_string(i)));
  for (int i = 0; i < w; ++i)
    load.push_back(aig.create_pi("load" + std::to_string(i)));

  // --- decode: derive control from instruction fields ---
  const std::vector<Lit> opc(instr.begin(), instr.begin() + 3);
  const Lit use_imm = instr[3];
  const Lit is_load = aig.create_and(instr[4], !instr[5]);
  const Lit is_branch = aig.create_and(instr[5], !instr[4]);
  // 8-bit immediate, sign-extended from instr[15].
  std::vector<Lit> imm;
  for (int i = 0; i < w; ++i)
    imm.push_back(i < 8 ? instr[static_cast<std::size_t>(8 + i)] : instr[15]);

  // --- operand select ---
  std::vector<Lit> op_b;
  for (int i = 0; i < w; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    op_b.push_back(aig.create_mux(use_imm, imm[iu], rt[iu]));
  }

  // --- execute: full ALU on the selected operands ---
  // The ALU is inlined here rather than instantiated so the opcode wiring
  // matches make_alu_aig's conventions (op = opc).
  const Lit is_sub = aig.create_and(opc[0], aig.create_and(!opc[1], !opc[2]));
  std::vector<Lit> b_eff;
  for (int i = 0; i < w; ++i)
    b_eff.push_back(aig.create_xor(op_b[static_cast<std::size_t>(i)], is_sub));
  const AdderKind add_kind = options.style == DatapathStyle::kMacro
                                 ? AdderKind::kKoggeStone
                                 : AdderKind::kRipple;
  const datapath::AdderResult sum =
      datapath::build_adder(aig, add_kind, rs, b_eff, is_sub);

  std::vector<Lit> logic_r;
  for (int i = 0; i < w; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const Lit and_b = aig.create_and(rs[iu], op_b[iu]);
    const Lit or_b = aig.create_or(rs[iu], op_b[iu]);
    const Lit xor_b = aig.create_xor(rs[iu], op_b[iu]);
    const Lit sel01 = aig.create_mux(opc[0], or_b, and_b);
    logic_r.push_back(aig.create_mux(opc[1], xor_b, sel01));
  }

  int shift_bits = 0;
  while ((1 << shift_bits) < w) ++shift_bits;
  const std::vector<Lit> amount(op_b.begin(), op_b.begin() + shift_bits);
  const std::vector<Lit> shifted =
      datapath::build_barrel_shifter(aig, rs, amount);

  std::vector<Lit> alu;
  for (int i = 0; i < w; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const Lit arith_or_logic = aig.create_mux(opc[1], logic_r[iu], sum.sum[iu]);
    alu.push_back(aig.create_mux(opc[2], shifted[iu], arith_or_logic));
  }

  // --- memory stage: address is the ALU sum; align load data ---
  const Lit lt = options.style == DatapathStyle::kMacro
                     ? datapath::build_less_than_tree(aig, rs, op_b)
                     : datapath::build_less_than(aig, rs, op_b);
  std::vector<Lit> aligned;
  const std::vector<Lit> byte_amount(alu.begin(), alu.begin() + 2);
  std::vector<Lit> load_shifted =
      datapath::build_barrel_shifter(aig, load, byte_amount);
  for (int i = 0; i < w; ++i)
    aligned.push_back(load_shifted[static_cast<std::size_t>(i)]);

  // --- writeback select ---
  for (int i = 0; i < w; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    aig.add_po(aig.create_mux(is_load, aligned[iu], alu[iu]),
               "wb" + std::to_string(i));
  }
  for (int i = 0; i < w; ++i)
    aig.add_po(sum.sum[static_cast<std::size_t>(i)],
               "mem_addr" + std::to_string(i));
  aig.add_po(aig.create_and(is_branch, lt), "take_branch");
  return aig;
}

}  // namespace gap::designs
