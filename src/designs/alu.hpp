#pragma once
/// \file alu.hpp
/// A 32-bit ALU core — the representative "entire path" design of the
/// paper's section 9 discussion (individual circuit elements integrated
/// into an ALU). Operations: add, sub, and, or, xor, shift-left,
/// set-less-than, equality; 3-bit opcode selects the result.

#include "datapath/adders.hpp"
#include "logic/aig.hpp"

namespace gap::designs {

/// Datapath implementation style (section 4.2: predefined macro cells vs
/// what RTL synthesis infers).
enum class DatapathStyle {
  kSynthesized,  ///< ripple adders, array multipliers: naive RTL synthesis
  kMacro,        ///< carry-lookahead / Kogge-Stone / Wallace macros
};

/// Opcode encoding for the ALU (3 bits).
enum class AluOp : unsigned {
  kAdd = 0,
  kSub = 1,
  kAnd = 2,
  kOr = 3,
  kXor = 4,
  kShl = 5,
  kSlt = 6,
  kEq = 7,
};

/// Build the ALU. PIs: a[width], b[width], op[3]. POs: result[width].
[[nodiscard]] logic::Aig make_alu_aig(int width, DatapathStyle style);

/// Reference model for tests: the expected ALU result.
[[nodiscard]] std::uint64_t alu_reference(AluOp op, std::uint64_t a,
                                          std::uint64_t b, int width);

}  // namespace gap::designs
