#include "designs/mac.hpp"

#include <string>

#include "common/check.hpp"
#include "datapath/multipliers.hpp"

namespace gap::designs {

using datapath::AdderKind;
using datapath::MultiplierKind;
using logic::Aig;
using logic::Lit;

logic::Aig make_mac_aig(int width, DatapathStyle style) {
  GAP_EXPECTS(width >= 2);
  Aig aig;
  std::vector<Lit> a, b, acc;
  for (int i = 0; i < width; ++i)
    a.push_back(aig.create_pi("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i)
    b.push_back(aig.create_pi("b" + std::to_string(i)));
  for (int i = 0; i < 2 * width; ++i)
    acc.push_back(aig.create_pi("acc" + std::to_string(i)));

  const MultiplierKind mul_kind = style == DatapathStyle::kMacro
                                      ? MultiplierKind::kWallace
                                      : MultiplierKind::kArray;
  const AdderKind add_kind = style == DatapathStyle::kMacro
                                 ? AdderKind::kKoggeStone
                                 : AdderKind::kRipple;
  const std::vector<Lit> prod = datapath::build_multiplier(aig, mul_kind, a, b);
  const datapath::AdderResult sum =
      datapath::build_adder(aig, add_kind, prod, acc, logic::lit_false());
  for (int i = 0; i < 2 * width; ++i)
    aig.add_po(sum.sum[static_cast<std::size_t>(i)],
               "out" + std::to_string(i));
  return aig;
}

}  // namespace gap::designs
