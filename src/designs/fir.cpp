#include "designs/fir.hpp"

#include <string>

#include "common/check.hpp"
#include "datapath/adders.hpp"
#include "datapath/multipliers.hpp"

namespace gap::designs {

using datapath::AdderKind;
using datapath::MultiplierKind;
using logic::Aig;
using logic::Lit;

logic::Aig make_fir_aig(DatapathStyle style) {
  Aig aig;
  std::vector<std::vector<Lit>> x(kFirTaps), c(kFirTaps);
  for (int t = 0; t < kFirTaps; ++t)
    for (int i = 0; i < kFirWidth; ++i)
      x[static_cast<std::size_t>(t)].push_back(
          aig.create_pi("x" + std::to_string(t) + "_" + std::to_string(i)));
  for (int t = 0; t < kFirTaps; ++t)
    for (int i = 0; i < kFirWidth; ++i)
      c[static_cast<std::size_t>(t)].push_back(
          aig.create_pi("c" + std::to_string(t) + "_" + std::to_string(i)));

  const MultiplierKind mul = style == DatapathStyle::kMacro
                                 ? MultiplierKind::kWallace
                                 : MultiplierKind::kArray;
  const AdderKind add = style == DatapathStyle::kMacro
                            ? AdderKind::kKoggeStone
                            : AdderKind::kRipple;

  // Products, then a balanced accumulation tree with width growth.
  std::vector<std::vector<Lit>> terms;
  for (int t = 0; t < kFirTaps; ++t)
    terms.push_back(datapath::build_multiplier(
        aig, mul, x[static_cast<std::size_t>(t)],
        c[static_cast<std::size_t>(t)]));

  auto widen = [&](std::vector<Lit> v, std::size_t w) {
    while (v.size() < w) v.push_back(logic::lit_false());
    return v;
  };
  auto add_vec = [&](std::vector<Lit> a, std::vector<Lit> b) {
    const std::size_t w = std::max(a.size(), b.size()) + 1;
    const auto r = datapath::build_adder(aig, add, widen(std::move(a), w),
                                         widen(std::move(b), w),
                                         logic::lit_false());
    return r.sum;
  };

  const auto s01 = add_vec(terms[0], terms[1]);
  const auto s23 = add_vec(terms[2], terms[3]);
  const auto y = add_vec(s01, s23);
  GAP_ENSURES(y.size() == 18u);
  for (std::size_t i = 0; i < y.size(); ++i)
    aig.add_po(y[i], "y" + std::to_string(i));
  return aig;
}

std::uint64_t fir_reference(const std::uint64_t x[kFirTaps],
                            const std::uint64_t c[kFirTaps]) {
  std::uint64_t y = 0;
  for (int t = 0; t < kFirTaps; ++t)
    y += (x[t] & 0xFF) * (c[t] & 0xFF);
  return y;
}

}  // namespace gap::designs
