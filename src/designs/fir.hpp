#pragma once
/// \file fir.hpp
/// A 4-tap FIR filter core: y = c0*x0 + c1*x1 + c2*x2 + c3*x3 over
/// unsigned 8-bit samples and coefficients — the DSP workload class the
/// paper's pipelining argument fits best (abundant data parallelism, no
/// feedback inside the core; the sample delay line lives in registers
/// outside it).

#include "designs/alu.hpp"
#include "logic/aig.hpp"

namespace gap::designs {

inline constexpr int kFirTaps = 4;
inline constexpr int kFirWidth = 8;

/// PIs: x0[8]..x3[8], c0[8]..c3[8]. POs: y[18].
[[nodiscard]] logic::Aig make_fir_aig(DatapathStyle style);

/// Reference model for tests.
[[nodiscard]] std::uint64_t fir_reference(const std::uint64_t x[kFirTaps],
                                          const std::uint64_t c[kFirTaps]);

}  // namespace gap::designs
