#include "designs/soc.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "designs/registry.hpp"
#include "netlist/checks.hpp"
#include "synth/mapper.hpp"

namespace gap::designs {

using library::Family;
using library::Func;
using netlist::Netlist;

SocResult make_soc(const library::CellLibrary& lib, DatapathStyle style,
                   double utilization, double module_area_scale) {
  GAP_EXPECTS(utilization > 0.0 && utilization <= 1.0);
  GAP_EXPECTS(module_area_scale >= 1.0);
  const std::vector<std::string> block_names = {"alu16", "mac8", "cpu16",
                                                "bus_controller"};
  const CellId dff = *lib.smallest(Func::kDff, Family::kStatic);

  SocResult soc{Netlist("soc", &lib), {}, {}, {}};
  Netlist& nl = soc.nl;

  // Primary inputs feeding the head of the chain plus fresh inputs for
  // each block's surplus pins.
  std::vector<NetId> bus;  // registered outputs of the previous block

  for (std::size_t b = 0; b < block_names.size(); ++b) {
    const logic::Aig aig = make_design(block_names[b], style);
    const std::size_t first_inst = nl.num_instances();

    // Block inputs: consume the incoming bus first, then fresh PIs.
    std::vector<NetId> inputs;
    for (std::size_t i = 0; i < aig.num_pis(); ++i) {
      if (i < bus.size()) {
        inputs.push_back(bus[i]);
      } else {
        const PortId p = nl.add_input(block_names[b] + "_" + aig.pi_name(i));
        inputs.push_back(nl.port(p).net);
      }
    }
    const synth::MapResult mapped = synth::map_into(
        aig, synth::MapOptions{}, nl, inputs, block_names[b]);

    // Register rank on the block outputs: the inter-module boundary.
    std::vector<NetId> registered;
    for (NetId out : mapped.outputs) {
      const NetId q = nl.add_net(nl.fresh_name(block_names[b] + "_q"));
      nl.add_instance(nl.fresh_name(block_names[b] + "_reg"), dff, {out}, q);
      registered.push_back(q);
    }

    // Tag every instance created for this block (logic + boundary regs).
    const ModuleId module{static_cast<std::uint32_t>(b)};
    SocBlockInfo info{block_names[b], module, 0, 0.0};
    for (std::size_t k = first_inst; k < nl.num_instances(); ++k) {
      const InstanceId id{static_cast<std::uint32_t>(k)};
      nl.instance(id).module = module;
      ++info.instances;
      info.area_um2 += nl.cell_of(id).area_um2;
    }
    soc.blocks.push_back(info);

    // Inter-module connectivity for the floorplanner.
    if (b > 0) {
      const double shared =
          static_cast<double>(std::min(bus.size(), aig.num_pis()));
      soc.module_nets.push_back(
          {{ModuleId{static_cast<std::uint32_t>(b - 1)}, module}, shared});
    }
    bus = std::move(registered);
  }

  // Chain tail drives the SoC outputs.
  for (std::size_t i = 0; i < bus.size(); ++i)
    nl.add_output("soc_out" + std::to_string(i), bus[i]);

  // A long feedback-style cross link in the floorplan graph (bus master
  // to the front of the chain) to make the floorplanning problem
  // non-trivial; electrically it is future work (would form a loop).
  soc.module_nets.push_back(
      {{ModuleId{0}, ModuleId{static_cast<std::uint32_t>(
                         block_names.size() - 1)}},
       4.0});

  for (const SocBlockInfo& info : soc.blocks)
    soc.modules.push_back(
        {info.name, info.area_um2 * module_area_scale / utilization, 1.0});

  GAP_ENSURES(netlist::verify(nl).ok());
  return soc;
}

}  // namespace gap::designs
