#include "route/router.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace gap::route {
namespace {

using netlist::NetDriver;
using netlist::Netlist;
using netlist::NetSink;

/// The routing fabric: a WxH bin grid with per-edge utilization.
class Grid {
 public:
  Grid(double x0, double y0, double pitch, int w, int h,
       const RouteOptions& opt)
      : x0_(x0), y0_(y0), pitch_(pitch), w_(w), h_(h), opt_(opt) {
    use_.assign(num_edges(), 0.0);
  }

  [[nodiscard]] int bin_x(double x) const {
    return std::clamp(static_cast<int>((x - x0_) / pitch_), 0, w_ - 1);
  }
  [[nodiscard]] int bin_y(double y) const {
    return std::clamp(static_cast<int>((y - y0_) / pitch_), 0, h_ - 1);
  }
  [[nodiscard]] double pitch() const { return pitch_; }

  /// Edge ids: horizontal edges first, then vertical.
  [[nodiscard]] std::size_t h_edge(int x, int y) const {
    GAP_EXPECTS(x >= 0 && x < w_ - 1 && y >= 0 && y < h_);
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(w_ - 1) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] std::size_t v_edge(int x, int y) const {
    GAP_EXPECTS(x >= 0 && x < w_ && y >= 0 && y < h_ - 1);
    return static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_ - 1) +
           static_cast<std::size_t>(x) * static_cast<std::size_t>(h_ - 1) +
           static_cast<std::size_t>(y);
  }
  [[nodiscard]] std::size_t num_edges() const {
    return static_cast<std::size_t>(h_) * static_cast<std::size_t>(w_ - 1) +
           static_cast<std::size_t>(w_) * static_cast<std::size_t>(h_ - 1);
  }

  [[nodiscard]] double edge_cost(std::size_t e) const {
    return 1.0 + std::pow(use_[e] / opt_.capacity_per_edge, opt_.alpha);
  }
  void commit(std::size_t e) { use_[e] += 1.0; }
  [[nodiscard]] double utilization(std::size_t e) const {
    return use_[e] / opt_.capacity_per_edge;
  }

  /// Append the edges of a single-bend path from (x0,y0) to (x1,y1),
  /// bending at (bx, by) which must share a row/column with both ends.
  void path_edges(int ax, int ay, int bx, int by,
                  std::vector<std::size_t>& out) const {
    // Horizontal run at row ay from ax to bx.
    for (int x = std::min(ax, bx); x < std::max(ax, bx); ++x)
      out.push_back(h_edge(x, ay));
    // Vertical run at column bx from ay to by.
    for (int y = std::min(ay, by); y < std::max(ay, by); ++y)
      out.push_back(v_edge(bx, y));
  }

 private:
  double x0_, y0_, pitch_;
  int w_, h_;
  RouteOptions opt_;
  std::vector<double> use_;
};

/// Candidate route between two bins: a list of edges.
std::vector<std::size_t> best_route(const Grid& g, int ax, int ay, int bx,
                                    int by, const RouteOptions& opt) {
  std::vector<std::vector<std::size_t>> candidates;
  auto add = [&](auto&& build) {
    std::vector<std::size_t> edges;
    build(edges);
    candidates.push_back(std::move(edges));
  };
  // Two L shapes.
  add([&](auto& e) {
    g.path_edges(ax, ay, bx, ay, e);  // horizontal then vertical
  });
  add([&](auto& e) {
    // vertical first: vertical run at ax, then horizontal at by.
    for (int y = std::min(ay, by); y < std::max(ay, by); ++y)
      e.push_back(g.v_edge(ax, y));
    for (int x = std::min(ax, bx); x < std::max(ax, bx); ++x)
      e.push_back(g.h_edge(x, by));
  });
  if (opt.congestion_aware && std::abs(ax - bx) > 1) {
    const int mid = (ax + bx) / 2;
    add([&](auto& e) {
      for (int x = std::min(ax, mid); x < std::max(ax, mid); ++x)
        e.push_back(g.h_edge(x, ay));
      for (int y = std::min(ay, by); y < std::max(ay, by); ++y)
        e.push_back(g.v_edge(mid, y));
      for (int x = std::min(mid, bx); x < std::max(mid, bx); ++x)
        e.push_back(g.h_edge(x, by));
    });
  }
  if (opt.congestion_aware && std::abs(ay - by) > 1) {
    const int mid = (ay + by) / 2;
    add([&](auto& e) {
      for (int y = std::min(ay, mid); y < std::max(ay, mid); ++y)
        e.push_back(g.v_edge(ax, y));
      for (int x = std::min(ax, bx); x < std::max(ax, bx); ++x)
        e.push_back(g.h_edge(x, mid));
      for (int y = std::min(mid, by); y < std::max(mid, by); ++y)
        e.push_back(g.v_edge(bx, y));
    });
  }

  double best_cost = 1e300;
  std::size_t best = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    double cost = 0.0;
    for (std::size_t e : candidates[c]) cost += g.edge_cost(e);
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return candidates[best];
}

}  // namespace

RouteResult route(Netlist& nl, const RouteOptions& options) {
  GAP_TRACE_SPAN("route::route");
  GAP_EXPECTS(options.grid_bins >= 2);
  GAP_EXPECTS(options.capacity_per_edge > 0.0);
  static common::Counter& runs = common::metrics().counter("route.runs");
  static common::Counter& nets_routed =
      common::metrics().counter("route.nets_routed");
  static common::Counter& segments =
      common::metrics().counter("route.segments_committed");
  static common::Counter& detours =
      common::metrics().counter("route.detoured_nets");
  runs.add();
  std::uint64_t local_nets = 0;
  std::uint64_t local_segments = 0;

  // Placement bounding box.
  double x0 = 1e300, y0 = 1e300, x1 = -1e300, y1 = -1e300;
  for (InstanceId id : nl.all_instances()) {
    const netlist::Instance& inst = nl.instance(id);
    GAP_EXPECTS(inst.x_um >= 0.0);  // must be placed
    x0 = std::min(x0, inst.x_um);
    x1 = std::max(x1, inst.x_um);
    y0 = std::min(y0, inst.y_um);
    y1 = std::max(y1, inst.y_um);
  }
  RouteResult result;
  if (x1 <= x0 && y1 <= y0) return result;  // degenerate placement

  const double span = std::max(x1 - x0, y1 - y0);
  const double pitch = std::max(span / options.grid_bins, 1.0);
  const int w = std::max(2, static_cast<int>((x1 - x0) / pitch) + 1);
  const int h = std::max(2, static_cast<int>((y1 - y0) / pitch) + 1);
  Grid grid(x0, y0, pitch, w, h, options);

  for (NetId nid : nl.all_nets()) {
    const netlist::Net& n = nl.net(nid);
    if (n.driver.kind != NetDriver::Kind::kInstance) continue;
    const netlist::Instance& drv = nl.instance(n.driver.inst);
    const int dx = grid.bin_x(drv.x_um);
    const int dy = grid.bin_y(drv.y_um);

    // HPWL for the comparison baseline.
    double hx0 = drv.x_um, hx1 = drv.x_um, hy0 = drv.y_um, hy1 = drv.y_um;
    std::unordered_set<std::size_t> net_edges;
    for (const NetSink& s : n.sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      const netlist::Instance& sink = nl.instance(s.inst);
      hx0 = std::min(hx0, sink.x_um);
      hx1 = std::max(hx1, sink.x_um);
      hy0 = std::min(hy0, sink.y_um);
      hy1 = std::max(hy1, sink.y_um);
      const int sx = grid.bin_x(sink.x_um);
      const int sy = grid.bin_y(sink.y_um);
      if (sx == dx && sy == dy) continue;  // same bin: no global edges
      for (std::size_t e : best_route(grid, dx, dy, sx, sy, options))
        net_edges.insert(e);  // trunk sharing within the net
    }
    for (std::size_t e : net_edges) grid.commit(e);
    ++local_nets;
    local_segments += net_edges.size();

    const double hpwl = (hx1 - hx0) + (hy1 - hy0);
    const double routed = std::max(
        hpwl, static_cast<double>(net_edges.size()) * grid.pitch());
    nl.net(nid).length_um = routed;
    result.total_hpwl_um += hpwl;
    result.total_routed_um += routed;
    if (routed > hpwl * 1.001 && !net_edges.empty()) ++result.detoured_nets;
  }

  std::size_t over = 0;
  for (std::size_t e = 0; e < grid.num_edges(); ++e) {
    result.max_utilization = std::max(result.max_utilization,
                                      grid.utilization(e));
    if (grid.utilization(e) > 1.0) ++over;
  }
  result.overflow_edges =
      static_cast<double>(over) / static_cast<double>(grid.num_edges());
  nets_routed.add(local_nets);
  segments.add(local_segments);
  detours.add(static_cast<std::uint64_t>(result.detoured_nets));
  common::metrics().gauge("route.max_utilization").set(result.max_utilization);
  return result;
}

}  // namespace gap::route
