#pragma once
/// \file router.hpp
/// Global routing over a bin grid — the third leg of section 5's wire
/// story ("wire length is obviously dependent on placement... but is also
/// influenced by the quality of routing"). Nets route as driver-rooted
/// stars of L-shaped (single-bend) paths with congestion-aware bend
/// choice and rip-up-free negotiation: each edge's cost grows with its
/// utilization, so later nets detour around hot channels. Routed lengths
/// (HPWL plus detours) are written back to the netlist for STA.

#include <vector>

#include "netlist/netlist.hpp"

namespace gap::route {

struct RouteOptions {
  /// Routing grid granularity: target cell count per bin edge.
  int grid_bins = 32;
  /// Wire capacity per bin edge (tracks); lower = more congestion.
  double capacity_per_edge = 16.0;
  /// Congestion cost exponent: edge cost = 1 + (use/cap)^alpha.
  double alpha = 3.0;
  /// Congestion-aware single-bend choice + one Z-shape escape level.
  bool congestion_aware = true;
};

struct RouteResult {
  double total_routed_um = 0.0;
  double total_hpwl_um = 0.0;     ///< lower bound for comparison
  double max_utilization = 0.0;   ///< worst edge use/capacity
  double overflow_edges = 0.0;    ///< fraction of edges above capacity
  int detoured_nets = 0;          ///< nets longer than their HPWL

  [[nodiscard]] double detour_factor() const {
    return total_hpwl_um > 0.0 ? total_routed_um / total_hpwl_um : 1.0;
  }
};

/// Route every placed net and annotate Net::length_um with the routed
/// length. Instances must be placed.
RouteResult route(netlist::Netlist& nl, const RouteOptions& options);

}  // namespace gap::route
