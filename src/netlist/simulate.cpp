#include "netlist/simulate.hpp"

#include <queue>

namespace gap::netlist {
namespace {

std::uint64_t eval_cell(library::Func f, const std::vector<std::uint64_t>& in) {
  using library::Func;
  switch (f) {
    case Func::kInv: return ~in[0];
    case Func::kBuf: return in[0];
    case Func::kNand2: return ~(in[0] & in[1]);
    case Func::kNand3: return ~(in[0] & in[1] & in[2]);
    case Func::kNand4: return ~(in[0] & in[1] & in[2] & in[3]);
    case Func::kNor2: return ~(in[0] | in[1]);
    case Func::kNor3: return ~(in[0] | in[1] | in[2]);
    case Func::kAnd2: return in[0] & in[1];
    case Func::kAnd3: return in[0] & in[1] & in[2];
    case Func::kOr2: return in[0] | in[1];
    case Func::kOr3: return in[0] | in[1] | in[2];
    case Func::kXor2: return in[0] ^ in[1];
    case Func::kXnor2: return ~(in[0] ^ in[1]);
    case Func::kAoi21: return ~((in[0] & in[1]) | in[2]);
    case Func::kOai21: return ~((in[0] | in[1]) & in[2]);
    case Func::kMux2: return (in[2] & in[1]) | (~in[2] & in[0]);
    case Func::kMaj3:
      return (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2]);
    case Func::kDff:
    case Func::kLatch:
      return in[0];  // transparent for combinational equivalence
  }
  return 0;
}

/// Topological order including sequential elements (flops are treated as
/// combinational pass-throughs). Requires the netlist to be feed-forward
/// even through registers, which holds for all pipelined designs here.
std::vector<InstanceId> full_topo_order(const Netlist& nl) {
  const std::size_t n = nl.num_instances();
  std::vector<int> pending(n, 0);
  std::queue<InstanceId> ready;
  for (InstanceId id : nl.all_instances()) {
    int count = 0;
    for (NetId in : nl.instance(id).inputs)
      if (nl.net(in).driver.kind == NetDriver::Kind::kInstance) ++count;
    pending[id.index()] = count;
    if (count == 0) ready.push(id);
  }
  std::vector<InstanceId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const InstanceId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (const NetSink& s : nl.net(nl.instance(id).output).sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      if (--pending[s.inst.index()] == 0) ready.push(s.inst);
    }
  }
  GAP_EXPECTS(order.size() == n);  // cyclic-through-registers not supported
  return order;
}

}  // namespace

std::vector<std::uint64_t> simulate_all_nets(
    const Netlist& nl, const std::vector<std::uint64_t>& pi_values) {
  std::vector<std::uint64_t> net_val(nl.num_nets(), 0);

  std::size_t pi_index = 0;
  for (PortId p : nl.all_ports()) {
    if (!nl.port(p).is_input) continue;
    GAP_EXPECTS(pi_index < pi_values.size());
    net_val[nl.port(p).net.index()] = pi_values[pi_index++];
  }
  GAP_EXPECTS(pi_index == pi_values.size());

  for (InstanceId id : full_topo_order(nl)) {
    const Instance& inst = nl.instance(id);
    std::vector<std::uint64_t> in;
    in.reserve(inst.inputs.size());
    for (NetId n : inst.inputs) in.push_back(net_val[n.index()]);
    net_val[inst.output.index()] = eval_cell(nl.cell_of(id).func, in);
  }
  return net_val;
}

std::vector<std::uint64_t> simulate(const Netlist& nl,
                                    const std::vector<std::uint64_t>& pi_values) {
  const auto net_val = simulate_all_nets(nl, pi_values);
  std::vector<std::uint64_t> out;
  for (PortId p : nl.all_ports())
    if (!nl.port(p).is_input) out.push_back(net_val[nl.port(p).net.index()]);
  return out;
}

}  // namespace gap::netlist
