#include "netlist/checks.hpp"

#include <algorithm>
#include <queue>

namespace gap::netlist {
namespace {

/// Combinational fanin instances of `id` (inputs driven by non-sequential
/// instances).
void for_each_comb_fanin(const Netlist& nl, InstanceId id,
                         const auto& callback) {
  for (NetId in : nl.instance(id).inputs) {
    const NetDriver& d = nl.net(in).driver;
    if (d.kind == NetDriver::Kind::kInstance && !nl.is_sequential(d.inst))
      callback(d.inst);
  }
}

/// Kahn's algorithm over the combinational fanout graph. If `leftover` is
/// non-null, the combinational instances that never became ready (i.e. the
/// members of cycles and their downstream cone) are collected there.
std::vector<InstanceId> topo_order_impl(const Netlist& nl,
                                        std::vector<InstanceId>* leftover) {
  const std::size_t n = nl.num_instances();
  std::vector<int> pending(n, 0);
  std::vector<bool> emitted(n, false);
  std::vector<InstanceId> order;
  order.reserve(n);
  std::queue<InstanceId> ready;

  for (InstanceId id : nl.all_instances()) {
    if (nl.is_sequential(id)) {
      // Sequential elements break combinational dependencies.
      order.push_back(id);
      emitted[id.index()] = true;
      continue;
    }
    int count = 0;
    for_each_comb_fanin(nl, id, [&](InstanceId) { ++count; });
    pending[id.index()] = count;
    if (count == 0) ready.push(id);
  }

  std::size_t emitted_comb = 0;
  while (!ready.empty()) {
    const InstanceId id = ready.front();
    ready.pop();
    order.push_back(id);
    emitted[id.index()] = true;
    ++emitted_comb;
    for (const NetSink& s : nl.net(nl.instance(id).output).sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      if (nl.is_sequential(s.inst)) continue;
      if (--pending[s.inst.index()] == 0) ready.push(s.inst);
    }
  }

  const std::size_t comb_total = n - nl.num_sequential();
  if (emitted_comb != comb_total) {
    if (leftover)
      for (InstanceId id : nl.all_instances())
        if (!emitted[id.index()]) leftover->push_back(id);
    return {};  // cycle
  }
  return order;
}

}  // namespace

CheckResult verify(const Netlist& nl) {
  CheckResult r;
  auto add = [&](common::ErrorCode code, std::string msg) {
    r.problems.push_back(msg);
    common::Diagnostic d;
    d.severity = common::Severity::kError;
    d.code = code;
    d.message = std::move(msg);
    d.where = "netlist:" + nl.name();
    r.diagnostics.push_back(std::move(d));
  };
  using common::ErrorCode;

  // Driver multiplicity: each net must have at most one source (a primary
  // input or one instance output). The Net::driver field can only record
  // one, so count claims independently of it.
  std::vector<int> driver_claims(nl.num_nets(), 0);
  for (PortId p : nl.all_ports())
    if (nl.port(p).is_input) ++driver_claims[nl.port(p).net.index()];
  for (InstanceId iid : nl.all_instances()) {
    const NetId out = nl.instance(iid).output;
    if (out.valid() && out.index() < nl.num_nets())
      ++driver_claims[out.index()];
  }
  for (NetId nid : nl.all_nets())
    if (driver_claims[nid.index()] > 1)
      add(ErrorCode::kStructural,
          "net '" + nl.net(nid).name + "' has " +
              std::to_string(driver_claims[nid.index()]) + " drivers");

  for (NetId nid : nl.all_nets()) {
    const Net& n = nl.net(nid);
    if (n.driver.kind == NetDriver::Kind::kNone && !n.sinks.empty())
      add(ErrorCode::kStructural,
          "net '" + n.name + "' has sinks but no driver");
    for (const NetSink& s : n.sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      const Instance& inst = nl.instance(s.inst);
      if (s.pin < 0 || s.pin >= static_cast<int>(inst.inputs.size()) ||
          inst.inputs[s.pin] != nid)
        add(ErrorCode::kStructural,
            "net '" + n.name + "' sink list inconsistent with instance '" +
                inst.name + "'");
    }
  }

  for (InstanceId iid : nl.all_instances()) {
    const Instance& inst = nl.instance(iid);
    const library::Cell& c = nl.lib().cell(inst.cell);
    if (static_cast<int>(inst.inputs.size()) != c.num_inputs())
      add(ErrorCode::kStructural,
          "instance '" + inst.name + "' pin count mismatch");
    const Net& out = nl.net(inst.output);
    if (out.driver.kind != NetDriver::Kind::kInstance ||
        out.driver.inst != iid)
      add(ErrorCode::kStructural,
          "instance '" + inst.name + "' output net driver mismatch");
  }

  std::vector<InstanceId> on_cycle;
  if (topo_order_impl(nl, &on_cycle).empty() && nl.num_instances() > 0) {
    std::string msg = "combinational cycle detected involving:";
    const std::size_t shown = std::min<std::size_t>(on_cycle.size(), 8);
    for (std::size_t i = 0; i < shown; ++i)
      msg += (i ? ", '" : " '") + nl.instance(on_cycle[i]).name + "'";
    if (on_cycle.size() > shown)
      msg += " (+" + std::to_string(on_cycle.size() - shown) + " more)";
    add(ErrorCode::kStructural, std::move(msg));
  }

  return r;
}

std::vector<InstanceId> topo_order(const Netlist& nl) {
  return topo_order_impl(nl, nullptr);
}

int logic_depth(const Netlist& nl) {
  const auto order = topo_order(nl);
  if (order.empty() && nl.num_instances() > 0) return -1;
  std::vector<int> depth(nl.num_instances(), 0);
  int max_depth = 0;
  for (InstanceId id : order) {
    if (nl.is_sequential(id)) continue;
    int d = 0;
    for_each_comb_fanin(nl, id,
                        [&](InstanceId f) { d = std::max(d, depth[f.index()]); });
    depth[id.index()] = d + 1;
    max_depth = std::max(max_depth, d + 1);
  }
  return max_depth;
}

}  // namespace gap::netlist
