#include "netlist/checks.hpp"

#include <algorithm>
#include <queue>

namespace gap::netlist {
namespace {

/// Combinational fanin instances of `id` (inputs driven by non-sequential
/// instances).
void for_each_comb_fanin(const Netlist& nl, InstanceId id,
                         const auto& callback) {
  for (NetId in : nl.instance(id).inputs) {
    const NetDriver& d = nl.net(in).driver;
    if (d.kind == NetDriver::Kind::kInstance && !nl.is_sequential(d.inst))
      callback(d.inst);
  }
}

/// Kahn's algorithm over the combinational fanout graph. If `leftover` is
/// non-null, the combinational instances that never became ready (i.e. the
/// members of cycles and their downstream cone) are collected there.
std::vector<InstanceId> topo_order_impl(const Netlist& nl,
                                        std::vector<InstanceId>* leftover) {
  const std::size_t n = nl.num_instances();
  std::vector<int> pending(n, 0);
  std::vector<bool> emitted(n, false);
  std::vector<InstanceId> order;
  order.reserve(n);
  std::queue<InstanceId> ready;

  for (InstanceId id : nl.all_instances()) {
    if (nl.is_sequential(id)) {
      // Sequential elements break combinational dependencies.
      order.push_back(id);
      emitted[id.index()] = true;
      continue;
    }
    int count = 0;
    for_each_comb_fanin(nl, id, [&](InstanceId) { ++count; });
    pending[id.index()] = count;
    if (count == 0) ready.push(id);
  }

  std::size_t emitted_comb = 0;
  while (!ready.empty()) {
    const InstanceId id = ready.front();
    ready.pop();
    order.push_back(id);
    emitted[id.index()] = true;
    ++emitted_comb;
    for (const NetSink& s : nl.net(nl.instance(id).output).sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      if (nl.is_sequential(s.inst)) continue;
      if (--pending[s.inst.index()] == 0) ready.push(s.inst);
    }
  }

  const std::size_t comb_total = n - nl.num_sequential();
  if (emitted_comb != comb_total) {
    if (leftover)
      for (InstanceId id : nl.all_instances())
        if (!emitted[id.index()]) leftover->push_back(id);
    return {};  // cycle
  }
  return order;
}

}  // namespace

std::vector<StructuralViolation> structural_scan(const Netlist& nl) {
  std::vector<StructuralViolation> out;
  auto add = [&](StructuralViolation::Kind kind, NetId net, InstanceId inst,
                 std::string msg) {
    StructuralViolation v;
    v.kind = kind;
    v.net = net;
    v.inst = inst;
    v.message = std::move(msg);
    out.push_back(std::move(v));
  };
  using Kind = StructuralViolation::Kind;

  // Driver multiplicity: each net must have at most one source (a primary
  // input or one instance output). The Net::driver field can only record
  // one, so count claims independently of it.
  std::vector<int> driver_claims(nl.num_nets(), 0);
  for (PortId p : nl.all_ports())
    if (nl.port(p).is_input) ++driver_claims[nl.port(p).net.index()];
  for (InstanceId iid : nl.all_instances()) {
    const NetId out_net = nl.instance(iid).output;
    if (out_net.valid() && out_net.index() < nl.num_nets())
      ++driver_claims[out_net.index()];
  }
  for (NetId nid : nl.all_nets())
    if (driver_claims[nid.index()] > 1)
      add(Kind::kMultiplyDriven, nid, InstanceId{},
          "net '" + nl.net(nid).name + "' has " +
              std::to_string(driver_claims[nid.index()]) + " drivers");

  for (NetId nid : nl.all_nets()) {
    const Net& n = nl.net(nid);
    if (n.driver.kind == NetDriver::Kind::kNone && !n.sinks.empty())
      add(Kind::kUndriven, nid, InstanceId{},
          "net '" + n.name + "' has sinks but no driver");
    for (const NetSink& s : n.sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      const Instance& inst = nl.instance(s.inst);
      if (s.pin < 0 || s.pin >= static_cast<int>(inst.inputs.size()) ||
          inst.inputs[s.pin] != nid)
        add(Kind::kSinkMismatch, nid, s.inst,
            "net '" + n.name + "' sink list inconsistent with instance '" +
                inst.name + "'");
    }
  }

  for (InstanceId iid : nl.all_instances()) {
    const Instance& inst = nl.instance(iid);
    const library::Cell& c = nl.lib().cell(inst.cell);
    if (static_cast<int>(inst.inputs.size()) != c.num_inputs())
      add(Kind::kPinCountMismatch, NetId{}, iid,
          "instance '" + inst.name + "' pin count mismatch");
    const Net& out_net = nl.net(inst.output);
    if (out_net.driver.kind != NetDriver::Kind::kInstance ||
        out_net.driver.inst != iid)
      add(Kind::kOutputDriverMismatch, NetId{}, iid,
          "instance '" + inst.name + "' output net driver mismatch");
  }

  std::vector<InstanceId> on_cycle;
  if (topo_order_impl(nl, &on_cycle).empty() && nl.num_instances() > 0) {
    // Deduplicated, sorted member names: the message must not depend on
    // instance construction order (or on aliased names appearing twice).
    std::vector<std::string> names;
    names.reserve(on_cycle.size());
    for (InstanceId id : on_cycle) names.push_back(nl.instance(id).name);
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    std::string msg = "combinational cycle detected involving:";
    const std::size_t shown = std::min<std::size_t>(names.size(), 8);
    for (std::size_t i = 0; i < shown; ++i)
      msg += (i ? ", '" : " '") + names[i] + "'";
    if (names.size() > shown)
      msg += " (+" + std::to_string(names.size() - shown) + " more)";
    add(Kind::kCombinationalCycle, NetId{}, InstanceId{}, std::move(msg));
  }

  return out;
}

CheckResult verify(const Netlist& nl) {
  CheckResult r;
  for (StructuralViolation& v : structural_scan(nl)) {
    r.problems.push_back(v.message);
    common::Diagnostic d;
    d.severity = common::Severity::kError;
    d.code = common::ErrorCode::kStructural;
    d.message = std::move(v.message);
    d.where = "netlist:" + nl.name();
    r.diagnostics.push_back(std::move(d));
  }
  return r;
}

std::vector<InstanceId> topo_order(const Netlist& nl) {
  return topo_order_impl(nl, nullptr);
}

int logic_depth(const Netlist& nl) {
  const auto order = topo_order(nl);
  if (order.empty() && nl.num_instances() > 0) return -1;
  std::vector<int> depth(nl.num_instances(), 0);
  int max_depth = 0;
  for (InstanceId id : order) {
    if (nl.is_sequential(id)) continue;
    int d = 0;
    for_each_comb_fanin(nl, id,
                        [&](InstanceId f) { d = std::max(d, depth[f.index()]); });
    depth[id.index()] = d + 1;
    max_depth = std::max(max_depth, d + 1);
  }
  return max_depth;
}

}  // namespace gap::netlist
