#include "netlist/checks.hpp"

#include <algorithm>
#include <queue>

namespace gap::netlist {
namespace {

/// Combinational fanin instances of `id` (inputs driven by non-sequential
/// instances).
void for_each_comb_fanin(const Netlist& nl, InstanceId id,
                         const auto& callback) {
  for (NetId in : nl.instance(id).inputs) {
    const NetDriver& d = nl.net(in).driver;
    if (d.kind == NetDriver::Kind::kInstance && !nl.is_sequential(d.inst))
      callback(d.inst);
  }
}

}  // namespace

CheckResult verify(const Netlist& nl) {
  CheckResult r;

  for (NetId nid : nl.all_nets()) {
    const Net& n = nl.net(nid);
    if (n.driver.kind == NetDriver::Kind::kNone && !n.sinks.empty())
      r.problems.push_back("net '" + n.name + "' has sinks but no driver");
    for (const NetSink& s : n.sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      const Instance& inst = nl.instance(s.inst);
      if (s.pin < 0 || s.pin >= static_cast<int>(inst.inputs.size()) ||
          inst.inputs[s.pin] != nid)
        r.problems.push_back("net '" + n.name +
                             "' sink list inconsistent with instance '" +
                             inst.name + "'");
    }
  }

  for (InstanceId iid : nl.all_instances()) {
    const Instance& inst = nl.instance(iid);
    const library::Cell& c = nl.lib().cell(inst.cell);
    if (static_cast<int>(inst.inputs.size()) != c.num_inputs())
      r.problems.push_back("instance '" + inst.name + "' pin count mismatch");
    const Net& out = nl.net(inst.output);
    if (out.driver.kind != NetDriver::Kind::kInstance ||
        out.driver.inst != iid)
      r.problems.push_back("instance '" + inst.name +
                           "' output net driver mismatch");
  }

  if (topo_order(nl).empty() && nl.num_instances() > 0)
    r.problems.push_back("combinational cycle detected");

  return r;
}

std::vector<InstanceId> topo_order(const Netlist& nl) {
  const std::size_t n = nl.num_instances();
  std::vector<int> pending(n, 0);
  std::vector<InstanceId> order;
  order.reserve(n);
  std::queue<InstanceId> ready;

  for (InstanceId id : nl.all_instances()) {
    if (nl.is_sequential(id)) {
      // Sequential elements break combinational dependencies.
      order.push_back(id);
      continue;
    }
    int count = 0;
    for_each_comb_fanin(nl, id, [&](InstanceId) { ++count; });
    pending[id.index()] = count;
    if (count == 0) ready.push(id);
  }

  // Kahn's algorithm over the combinational fanout graph.
  std::size_t emitted_comb = 0;
  while (!ready.empty()) {
    const InstanceId id = ready.front();
    ready.pop();
    order.push_back(id);
    ++emitted_comb;
    for (const NetSink& s : nl.net(nl.instance(id).output).sinks) {
      if (s.kind != NetSink::Kind::kInstancePin) continue;
      if (nl.is_sequential(s.inst)) continue;
      if (--pending[s.inst.index()] == 0) ready.push(s.inst);
    }
  }

  const std::size_t comb_total = n - nl.num_sequential();
  if (emitted_comb != comb_total) return {};  // cycle
  return order;
}

int logic_depth(const Netlist& nl) {
  const auto order = topo_order(nl);
  if (order.empty() && nl.num_instances() > 0) return -1;
  std::vector<int> depth(nl.num_instances(), 0);
  int max_depth = 0;
  for (InstanceId id : order) {
    if (nl.is_sequential(id)) continue;
    int d = 0;
    for_each_comb_fanin(nl, id,
                        [&](InstanceId f) { d = std::max(d, depth[f.index()]); });
    depth[id.index()] = d + 1;
    max_depth = std::max(max_depth, d + 1);
  }
  return max_depth;
}

}  // namespace gap::netlist
