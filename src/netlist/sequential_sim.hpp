#pragma once
/// \file sequential_sim.hpp
/// Cycle-accurate sequential simulation: registers hold state across
/// step() calls instead of being treated as transparent. This is the
/// ground truth for pipeline latency — a 5-stage pipeline's output must
/// equal the combinational function of the inputs presented five edges
/// earlier — and the equivalence oracle for retiming, which preserves
/// I/O behaviour cycle for cycle.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace gap::netlist {

/// 64 independent lanes simulate 64 stimulus streams at once, exactly as
/// the combinational simulator does.
class SequentialSimulator {
 public:
  /// The netlist must outlive the simulator. Register state starts at 0.
  explicit SequentialSimulator(const Netlist& nl);

  /// Advance one clock edge: capture every register's D, then propagate
  /// the new Q values and `pi_values` (one word per input port, in port
  /// order) through the combinational logic. Returns one word per output
  /// port. Level-sensitive latches are treated as edge elements here (a
  /// documented simplification: this simulator validates pipelines, not
  /// multi-phase transparency).
  std::vector<std::uint64_t> step(const std::vector<std::uint64_t>& pi_values);

  /// Reset all register state to zero.
  void reset();

  /// Current cycle count since construction/reset.
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  void propagate();

  const Netlist& nl_;
  std::vector<InstanceId> comb_order_;   ///< combinational evaluation order
  std::vector<InstanceId> registers_;
  std::vector<std::uint64_t> state_;     ///< per register, parallel to registers_
  std::vector<std::uint64_t> net_val_;
  std::vector<std::uint64_t> pi_;        ///< latched input words
  std::uint64_t cycle_ = 0;
};

}  // namespace gap::netlist
