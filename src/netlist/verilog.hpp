#pragma once
/// \file verilog.hpp
/// Structural Verilog interchange: write an implemented netlist as a
/// gate-level module and read one back against a cell library. The
/// supported subset is exactly what write_verilog() emits — one module,
/// scalar ports, `wire` declarations, and named-pin cell instantiations —
/// which is also the subset the era's ASIC handoff flows exchanged.

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "netlist/netlist.hpp"

namespace gap::netlist {

/// Canonical pin names for a cell's inputs ("a", "b", "c", "d"; "d" for
/// flop/latch data) and output ("y"; "q" for sequentials).
[[nodiscard]] std::string verilog_input_pin(library::Func f, int pin);
[[nodiscard]] std::string verilog_output_pin(library::Func f);

/// Emit the netlist as structural Verilog. Net and instance names are
/// sanitized to [A-Za-z0-9_] identifiers deterministically.
void write_verilog(const Netlist& nl, std::ostream& os);
[[nodiscard]] std::string to_verilog(const Netlist& nl);

/// Parse a module produced by write_verilog back into a netlist bound to
/// `lib`.
///
/// Untrusted-input path: never aborts. Unknown cells/nets/pins, dangling
/// or doubly-connected pins, multiply-driven nets, redeclarations, and
/// truncated input all come back as a failed Status with an ErrorCode and
/// the line:column of the offending token. Modules written by
/// write_verilog() round-trip bit-identically.
[[nodiscard]] common::Result<Netlist> read_verilog(
    const std::string& text, const library::CellLibrary& lib);

}  // namespace gap::netlist
