#pragma once
/// \file verilog.hpp
/// Structural Verilog interchange: write an implemented netlist as a
/// gate-level module and read one back against a cell library. The
/// supported subset is exactly what write_verilog() emits — one module,
/// scalar ports, `wire` declarations, and named-pin cell instantiations —
/// which is also the subset the era's ASIC handoff flows exchanged.
///
/// Annotations the module syntax cannot carry (port drive/load
/// assumptions, routed net lengths, latch clock phases) travel in `// gap:`
/// comment directives, emitted after `endmodule` and applied after parse:
///
///   // gap: drive <input-port> <unit-inverter multiples>
///   // gap: load <output-port> <unit input capacitances>
///   // gap: length <net> <um>
///   // gap: phase <instance> <clock phase index>
///   // gap: domain <input-port> <clock-domain name>
///   // gap: tie <input-port> 0|1
///   // gap: reset <input-port> 0|1
///   // gap: hasreset <instance> 0|1
///
/// Plain comments are still skipped; only comments whose first word is
/// `gap:` are interpreted (and rejected with a located error when
/// malformed).

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "netlist/netlist.hpp"

namespace gap::netlist {

/// Canonical pin names for a cell's inputs ("a", "b", "c", "d"; "d" for
/// flop/latch data) and output ("y"; "q" for sequentials).
[[nodiscard]] std::string verilog_input_pin(library::Func f, int pin);
[[nodiscard]] std::string verilog_output_pin(library::Func f);

/// Emit the netlist as structural Verilog. Net and instance names are
/// sanitized to [A-Za-z0-9_] identifiers deterministically. Non-default
/// annotations (see file comment) are emitted as `// gap:` directives, so
/// read_verilog() reconstructs them losslessly; a netlist without such
/// annotations emits byte-identical text to earlier versions.
void write_verilog(const Netlist& nl, std::ostream& os);
[[nodiscard]] std::string to_verilog(const Netlist& nl);

/// Parse a module produced by write_verilog back into a netlist bound to
/// `lib`.
///
/// Untrusted-input path: never aborts. Unknown cells/nets/pins, dangling
/// or doubly-connected pins, multiply-driven nets, redeclarations, and
/// truncated input all come back as a failed Status with an ErrorCode and
/// the line:column of the offending token. Modules written by
/// write_verilog() round-trip bit-identically.
[[nodiscard]] common::Result<Netlist> read_verilog(
    const std::string& text, const library::CellLibrary& lib);

/// One structural problem recorded (instead of rejected) by the lenient
/// reader. The anchors are names, not ids: the repaired netlist rewires
/// the offending connection to a synthetic net, so the original target is
/// only known by name.
struct VerilogViolation {
  enum class Kind : std::uint8_t {
    kMultiplyDriven,      ///< net already had a driver; extra claim severed
    kFloatingInput,       ///< input pin left unconnected; tied to a new net
    kUnconnectedOutput,   ///< output pin left unconnected; given a new net
  };
  Kind kind = Kind::kMultiplyDriven;
  std::string net;       ///< offending net (kMultiplyDriven)
  std::string instance;  ///< offending instance (pin kinds)
  std::string pin;       ///< offending pin name (pin kinds)
  common::SourceLoc loc;
  std::string message;
};

/// Nets fabricated by the lenient reader to stand in for broken
/// connections are named with this prefix; lint's unloaded/undriven rules
/// skip them (the violation is already reported with its real anchor).
inline constexpr const char* kSyntheticNetPrefix = "__gaplint";

/// Lenient parse: the netlist plus every structural problem found.
struct LenientParse {
  Netlist nl;
  std::vector<VerilogViolation> violations;
};

/// Parse like read_verilog(), but record structural violations (multiply
/// driven nets, unconnected pins) with their source locations and keep
/// going best-effort, repairing the netlist with synthetic nets so it
/// stays loadable. Syntax errors, unknown names, and malformed directives
/// still fail hard — gaplint needs a module to analyze at all.
[[nodiscard]] common::Result<LenientParse> read_verilog_lenient(
    const std::string& text, const library::CellLibrary& lib);

}  // namespace gap::netlist
