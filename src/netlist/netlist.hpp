#pragma once
/// \file netlist.hpp
/// Gate-level netlist: cell instances connected by single-driver nets, with
/// primary input/output ports. Each instance references a Cell in a
/// CellLibrary; physical information (position, net length) is annotated by
/// the placement stage and consumed by STA.

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "library/library.hpp"

namespace gap::netlist {

using library::CellLibrary;
using library::Func;

/// What drives a net.
struct NetDriver {
  enum class Kind : std::uint8_t { kNone, kInstance, kPrimaryInput };
  Kind kind = Kind::kNone;
  InstanceId inst;  ///< valid when kind == kInstance
  PortId port;      ///< valid when kind == kPrimaryInput
};

/// One fanout of a net.
struct NetSink {
  enum class Kind : std::uint8_t { kInstancePin, kPrimaryOutput };
  Kind kind = Kind::kInstancePin;
  InstanceId inst;  ///< valid when kind == kInstancePin
  int pin = 0;      ///< input pin index on inst
  PortId port;      ///< valid when kind == kPrimaryOutput

  friend bool operator==(const NetSink&, const NetSink&) = default;
};

struct Instance {
  std::string name;
  CellId cell;
  std::vector<NetId> inputs;  ///< size == cell's num_inputs
  NetId output;

  /// Continuous drive override used by custom sizing; <= 0 means "use the
  /// library cell's drive".
  double drive_override = 0.0;

  /// Clock phase for sequential instances (multi-phase latch clocking).
  int clock_phase = 0;

  /// Reset-discipline annotation (`// gap: hasreset <inst> 1`): the
  /// register has a reset and powers up in a defined state. Consumed by
  /// the lint dataflow engine (GL-X004); value-only, never structural.
  bool has_reset = false;

  /// Placement annotation (um); negative = unplaced.
  double x_um = -1.0;
  double y_um = -1.0;

  /// Floorplanning module this instance belongs to.
  ModuleId module;
};

struct Net {
  std::string name;
  NetDriver driver;
  std::vector<NetSink> sinks;

  /// Routed/estimated wire length (um); 0 until placement annotates it.
  double length_um = 0.0;

  /// Wire width in minimum-width multiples (section 6: "wires may be
  /// widened to reduce the delays"); written by wire sizing.
  double width_multiple = 1.0;

  /// Extra lumped capacitance at this net (unit input capacitances),
  /// e.g. primary-output loading.
  double extra_cap_units = 0.0;
};

struct Port {
  std::string name;
  NetId net;
  bool is_input = true;

  /// Drive strength modeled for primary inputs (unit-inverter multiples).
  double ext_drive = 8.0;

  /// Clock-domain annotation (`// gap: domain <port> <name>`): the named
  /// domain this input's data is synchronous to. Empty = undeclared.
  std::string domain;

  /// Tie annotation (`// gap: tie <port> 0|1`): the input is a constant
  /// tie-low/tie-high rail. -1 = not a tie.
  int tie = -1;

  /// Reset annotation (`// gap: reset <port> 1`): the input is a reset
  /// root; its domain (if named) seeds reset-domain propagation.
  bool is_reset = false;
};

/// The netlist. Instances/nets/ports are stable, index-addressed arrays;
/// deletion is not supported (transform passes build new netlists instead),
/// which keeps ids valid across the whole flow.
class Netlist {
 public:
  Netlist(std::string name, const CellLibrary* lib);

  // --- construction ---
  NetId add_net(std::string name);
  PortId add_input(std::string name, double ext_drive = 8.0);
  PortId add_output(std::string name, NetId net, double load_units = 1.0);
  InstanceId add_instance(std::string name, CellId cell,
                          std::vector<NetId> inputs, NetId output);

  /// Rewire input pin `pin` of `inst` to `net`, maintaining sink lists.
  void rewire_input(InstanceId inst, int pin, NetId net);

  /// Move the output of `inst` to drive `net` (which must be driverless).
  void rewire_output(InstanceId inst, NetId net);

  /// Replace the cell of an instance (repowering / family swap). The new
  /// cell must implement the same function with the same pin count.
  void replace_cell(InstanceId inst, CellId cell);

  // --- access ---
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CellLibrary& lib() const { return *lib_; }

  [[nodiscard]] std::size_t num_instances() const { return instances_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }

  [[nodiscard]] const Instance& instance(InstanceId id) const;
  [[nodiscard]] Instance& instance(InstanceId id);
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] Net& net(NetId id);
  [[nodiscard]] const Port& port(PortId id) const;
  [[nodiscard]] Port& port(PortId id);

  [[nodiscard]] const library::Cell& cell_of(InstanceId id) const {
    return lib_->cell(instance(id).cell);
  }

  /// Effective drive of an instance (override or library drive).
  [[nodiscard]] double drive_of(InstanceId id) const {
    const Instance& i = instance(id);
    return i.drive_override > 0.0 ? i.drive_override
                                  : lib_->cell(i.cell).drive;
  }

  /// Input capacitance one pin of `inst` presents, in unit caps.
  [[nodiscard]] double pin_cap(InstanceId id) const {
    return cell_of(id).logical_effort * drive_of(id);
  }

  [[nodiscard]] bool is_sequential(InstanceId id) const {
    return cell_of(id).is_sequential();
  }

  /// Total capacitive load on a net (pins + wire + extra), in unit caps.
  [[nodiscard]] double net_load(NetId id) const;

  /// All instance ids (for range-for loops).
  [[nodiscard]] std::vector<InstanceId> all_instances() const;
  [[nodiscard]] std::vector<NetId> all_nets() const;
  [[nodiscard]] std::vector<PortId> all_ports() const;

  /// Count of sequential instances.
  [[nodiscard]] std::size_t num_sequential() const;

  /// Sum of instance areas (um^2).
  [[nodiscard]] double total_area_um2() const;

  /// Make a unique net/instance name with the given prefix.
  [[nodiscard]] std::string fresh_name(const std::string& prefix);

  /// Structural version: bumped by every mutator that changes what the
  /// netlist *is* — adding nets/ports/instances, rewiring pins, swapping
  /// cells. Derived index structures (sta::CompactGraph) record the
  /// version they were built at and detect staleness by comparison.
  /// Value-only writes through the non-const instance()/net() accessors
  /// (drive overrides, placement, wire lengths) do not bump it; callers
  /// making those must refresh derived values themselves (the incremental
  /// timer's apply() path does).
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  std::string name_;
  const CellLibrary* lib_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
  std::vector<Port> ports_;
  std::uint64_t fresh_counter_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace gap::netlist
