#pragma once
/// \file checks.hpp
/// Structural verification and combinational ordering of a netlist. Every
/// flow stage calls verify() after transforming a netlist; a malformed
/// netlist (multiple drivers, dangling pins, combinational cycles) would
/// silently corrupt all downstream timing numbers.

#include <string>
#include <vector>

#include "common/status.hpp"
#include "netlist/netlist.hpp"

namespace gap::netlist {

/// Result of a structural check: empty means the netlist is well-formed.
/// verify() reports *all* violations in one pass, never just the first —
/// `problems` keeps the legacy human-readable strings, `diagnostics`
/// carries the same findings with structured error codes (one entry each,
/// same order).
struct CheckResult {
  std::vector<std::string> problems;
  std::vector<common::Diagnostic> diagnostics;
  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Check: every net has exactly one driver and consistent sink lists,
/// instance pin counts match cells, no combinational cycles. All
/// violations are collected; the check never stops at the first failure.
[[nodiscard]] CheckResult verify(const Netlist& nl);

/// Topological order of all instances for combinational propagation:
/// sequential instances come first (their outputs are cycle sources),
/// then combinational instances in dependency order.
/// Fails (returns empty) if a combinational cycle exists.
[[nodiscard]] std::vector<InstanceId> topo_order(const Netlist& nl);

/// Maximum number of combinational instances on any register-to-register /
/// port-to-port path (the "logic levels" of section 4).
[[nodiscard]] int logic_depth(const Netlist& nl);

}  // namespace gap::netlist
