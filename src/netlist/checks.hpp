#pragma once
/// \file checks.hpp
/// Structural verification and combinational ordering of a netlist. Every
/// flow stage calls verify() after transforming a netlist; a malformed
/// netlist (multiple drivers, dangling pins, combinational cycles) would
/// silently corrupt all downstream timing numbers.
///
/// The checks themselves live in structural_scan(), which reports typed
/// violations with net/instance anchors. verify() is a thin formatter over
/// that scan (the blocking subset), and gap::lint's structural rules
/// consume the same scan so the two can never disagree.

#include <string>
#include <vector>

#include "common/status.hpp"
#include "netlist/netlist.hpp"

namespace gap::netlist {

/// One structural violation with a machine-readable kind and an anchor
/// (net and/or instance id; invalid when not applicable).
struct StructuralViolation {
  enum class Kind : std::uint8_t {
    kMultiplyDriven,        ///< net claimed by more than one source
    kUndriven,              ///< net has sinks but no driver
    kSinkMismatch,          ///< net's sink list disagrees with instance pins
    kPinCountMismatch,      ///< instance pin count != cell pin count
    kOutputDriverMismatch,  ///< instance output net does not record it
    kCombinationalCycle,    ///< combinational feedback loop
  };
  Kind kind = Kind::kMultiplyDriven;
  NetId net;        ///< valid for net-anchored kinds
  InstanceId inst;  ///< valid for instance-anchored kinds
  std::string message;
};

/// Report *all* structural violations in one pass, never stopping at the
/// first. The combinational-cycle message lists the member instances
/// deduplicated and sorted by name, so it is stable across construction
/// orderings.
[[nodiscard]] std::vector<StructuralViolation> structural_scan(
    const Netlist& nl);

/// Result of a structural check: empty means the netlist is well-formed.
/// verify() reports *all* violations in one pass, never just the first —
/// `problems` keeps the legacy human-readable strings, `diagnostics`
/// carries the same findings with structured error codes (one entry each,
/// same order).
struct CheckResult {
  std::vector<std::string> problems;
  std::vector<common::Diagnostic> diagnostics;
  [[nodiscard]] bool ok() const { return diagnostics.empty(); }
};

/// Check: every net has exactly one driver and consistent sink lists,
/// instance pin counts match cells, no combinational cycles. Thin wrapper
/// over structural_scan(): every violation it finds is blocking.
[[nodiscard]] CheckResult verify(const Netlist& nl);

/// Topological order of all instances for combinational propagation:
/// sequential instances come first (their outputs are cycle sources),
/// then combinational instances in dependency order.
/// Fails (returns empty) if a combinational cycle exists.
[[nodiscard]] std::vector<InstanceId> topo_order(const Netlist& nl);

/// Maximum number of combinational instances on any register-to-register /
/// port-to-port path (the "logic levels" of section 4).
[[nodiscard]] int logic_depth(const Netlist& nl);

}  // namespace gap::netlist
