#include "netlist/netlist.hpp"

#include <algorithm>

namespace gap::netlist {

Netlist::Netlist(std::string name, const CellLibrary* lib)
    : name_(std::move(name)), lib_(lib) {
  GAP_EXPECTS(lib_ != nullptr);
}

NetId Netlist::add_net(std::string name) {
  ++version_;
  const NetId id{static_cast<std::uint32_t>(nets_.size())};
  Net n;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return id;
}

PortId Netlist::add_input(std::string name, double ext_drive) {
  ++version_;
  const NetId net_id = add_net(name);
  const PortId id{static_cast<std::uint32_t>(ports_.size())};
  ports_.push_back(Port{std::move(name), net_id, true, ext_drive});
  Net& n = nets_[net_id.index()];
  n.driver.kind = NetDriver::Kind::kPrimaryInput;
  n.driver.port = id;
  return id;
}

PortId Netlist::add_output(std::string name, NetId net, double load_units) {
  ++version_;
  GAP_EXPECTS(net.valid() && net.index() < nets_.size());
  const PortId id{static_cast<std::uint32_t>(ports_.size())};
  ports_.push_back(Port{std::move(name), net, false, 0.0});
  Net& n = nets_[net.index()];
  NetSink sink;
  sink.kind = NetSink::Kind::kPrimaryOutput;
  sink.port = id;
  n.sinks.push_back(sink);
  n.extra_cap_units += load_units;
  return id;
}

InstanceId Netlist::add_instance(std::string name, CellId cell,
                                 std::vector<NetId> inputs, NetId output) {
  ++version_;
  const library::Cell& c = lib_->cell(cell);
  GAP_EXPECTS(static_cast<int>(inputs.size()) == c.num_inputs());
  GAP_EXPECTS(output.valid() && output.index() < nets_.size());
  GAP_EXPECTS(nets_[output.index()].driver.kind == NetDriver::Kind::kNone);

  const InstanceId id{static_cast<std::uint32_t>(instances_.size())};
  for (std::size_t pin = 0; pin < inputs.size(); ++pin) {
    const NetId in = inputs[pin];
    GAP_EXPECTS(in.valid() && in.index() < nets_.size());
    NetSink sink;
    sink.kind = NetSink::Kind::kInstancePin;
    sink.inst = id;
    sink.pin = static_cast<int>(pin);
    nets_[in.index()].sinks.push_back(sink);
  }
  Net& out = nets_[output.index()];
  out.driver.kind = NetDriver::Kind::kInstance;
  out.driver.inst = id;

  Instance inst;
  inst.name = std::move(name);
  inst.cell = cell;
  inst.inputs = std::move(inputs);
  inst.output = output;
  instances_.push_back(std::move(inst));
  return id;
}

void Netlist::rewire_input(InstanceId inst, int pin, NetId net) {
  ++version_;
  Instance& i = instance(inst);
  GAP_EXPECTS(pin >= 0 && pin < static_cast<int>(i.inputs.size()));
  GAP_EXPECTS(net.valid() && net.index() < nets_.size());
  const NetId old = i.inputs[pin];
  NetSink sink;
  sink.kind = NetSink::Kind::kInstancePin;
  sink.inst = inst;
  sink.pin = pin;
  auto& old_sinks = nets_[old.index()].sinks;
  old_sinks.erase(std::remove(old_sinks.begin(), old_sinks.end(), sink),
                  old_sinks.end());
  nets_[net.index()].sinks.push_back(sink);
  i.inputs[pin] = net;
}

void Netlist::rewire_output(InstanceId inst, NetId net) {
  ++version_;
  Instance& i = instance(inst);
  GAP_EXPECTS(net.valid() && net.index() < nets_.size());
  GAP_EXPECTS(nets_[net.index()].driver.kind == NetDriver::Kind::kNone);
  nets_[i.output.index()].driver = NetDriver{};
  nets_[net.index()].driver.kind = NetDriver::Kind::kInstance;
  nets_[net.index()].driver.inst = inst;
  i.output = net;
}

void Netlist::replace_cell(InstanceId inst, CellId cell) {
  ++version_;
  Instance& i = instance(inst);
  const library::Cell& old_cell = lib_->cell(i.cell);
  const library::Cell& new_cell = lib_->cell(cell);
  GAP_EXPECTS(new_cell.func == old_cell.func);
  GAP_EXPECTS(new_cell.num_inputs() == old_cell.num_inputs());
  i.cell = cell;
}

const Instance& Netlist::instance(InstanceId id) const {
  GAP_EXPECTS(id.valid() && id.index() < instances_.size());
  return instances_[id.index()];
}

Instance& Netlist::instance(InstanceId id) {
  GAP_EXPECTS(id.valid() && id.index() < instances_.size());
  return instances_[id.index()];
}

const Net& Netlist::net(NetId id) const {
  GAP_EXPECTS(id.valid() && id.index() < nets_.size());
  return nets_[id.index()];
}

Net& Netlist::net(NetId id) {
  GAP_EXPECTS(id.valid() && id.index() < nets_.size());
  return nets_[id.index()];
}

const Port& Netlist::port(PortId id) const {
  GAP_EXPECTS(id.valid() && id.index() < ports_.size());
  return ports_[id.index()];
}

Port& Netlist::port(PortId id) {
  GAP_EXPECTS(id.valid() && id.index() < ports_.size());
  return ports_[id.index()];
}

double Netlist::net_load(NetId id) const {
  const Net& n = net(id);
  double load = n.extra_cap_units;
  for (const NetSink& s : n.sinks)
    if (s.kind == NetSink::Kind::kInstancePin) load += pin_cap(s.inst);
  // Widening multiplies the area component of wire capacitance (~60%).
  const double width_scale = 0.6 * n.width_multiple + 0.4;
  load += lib_->technology().cap_to_units(
      lib_->technology().wire_c_ff_per_um * n.length_um * width_scale);
  return load;
}

std::vector<InstanceId> Netlist::all_instances() const {
  std::vector<InstanceId> out;
  out.reserve(instances_.size());
  for (std::uint32_t i = 0; i < instances_.size(); ++i)
    out.push_back(InstanceId{i});
  return out;
}

std::vector<NetId> Netlist::all_nets() const {
  std::vector<NetId> out;
  out.reserve(nets_.size());
  for (std::uint32_t i = 0; i < nets_.size(); ++i) out.push_back(NetId{i});
  return out;
}

std::vector<PortId> Netlist::all_ports() const {
  std::vector<PortId> out;
  out.reserve(ports_.size());
  for (std::uint32_t i = 0; i < ports_.size(); ++i) out.push_back(PortId{i});
  return out;
}

std::size_t Netlist::num_sequential() const {
  std::size_t n = 0;
  for (const Instance& i : instances_)
    if (lib_->cell(i.cell).is_sequential()) ++n;
  return n;
}

double Netlist::total_area_um2() const {
  double a = 0.0;
  for (const Instance& i : instances_) {
    const library::Cell& c = lib_->cell(i.cell);
    // Drive overrides scale area proportionally (transistor widths).
    const double scale = i.drive_override > 0.0 ? i.drive_override / c.drive : 1.0;
    a += c.area_um2 * scale;
  }
  return a;
}

std::string Netlist::fresh_name(const std::string& prefix) {
  return prefix + "_" + std::to_string(fresh_counter_++);
}

}  // namespace gap::netlist
