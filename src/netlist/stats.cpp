#include "netlist/stats.hpp"

#include "netlist/checks.hpp"

namespace gap::netlist {

NetlistStats collect_stats(const Netlist& nl) {
  NetlistStats s;
  s.instances = nl.num_instances();
  s.sequential = nl.num_sequential();
  s.nets = nl.num_nets();
  for (PortId p : nl.all_ports())
    (nl.port(p).is_input ? s.inputs : s.outputs) += 1;
  s.logic_depth = logic_depth(nl);
  s.area_um2 = nl.total_area_um2();
  for (InstanceId id : nl.all_instances())
    s.cells_by_func[library::traits(nl.cell_of(id).func).name] += 1;
  return s;
}

std::string format_stats(const NetlistStats& s) {
  std::string out;
  out += "instances: " + std::to_string(s.instances) +
         " (sequential: " + std::to_string(s.sequential) + ")\n";
  out += "nets: " + std::to_string(s.nets) + ", ports: " +
         std::to_string(s.inputs) + " in / " + std::to_string(s.outputs) +
         " out\n";
  out += "logic depth: " + std::to_string(s.logic_depth) + " levels\n";
  out += "area: " + std::to_string(s.area_um2) + " um^2\n";
  out += "cells:";
  for (const auto& [func, count] : s.cells_by_func)
    out += " " + func + ":" + std::to_string(count);
  out += "\n";
  return out;
}

}  // namespace gap::netlist
