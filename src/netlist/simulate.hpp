#pragma once
/// \file simulate.hpp
/// 64-way parallel functional simulation of a combinational netlist, used
/// to equivalence-check technology mapping and netlist transforms against
/// the source logic network. Sequential instances are treated as
/// transparent pass-throughs of their D input (combinational unrolling of
/// one cycle), which is exactly what register-retiming equivalence needs.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace gap::netlist {

/// Simulate: `pi_values[i]` carries 64 stimulus bits for input port i (in
/// port order). Returns one word per output port (in port order).
[[nodiscard]] std::vector<std::uint64_t> simulate(
    const Netlist& nl, const std::vector<std::uint64_t>& pi_values);

/// Same propagation, but returns the value word of every net (indexed by
/// NetId) — used by switching-activity estimation.
[[nodiscard]] std::vector<std::uint64_t> simulate_all_nets(
    const Netlist& nl, const std::vector<std::uint64_t>& pi_values);

}  // namespace gap::netlist
