#include "netlist/sweep.hpp"

#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "netlist/checks.hpp"

namespace gap::netlist {

SweepResult sweep_dead(const Netlist& nl) {
  // Mark live instances: backwards reachability from primary outputs.
  std::vector<bool> live_inst(nl.num_instances(), false);
  std::vector<bool> live_net(nl.num_nets(), false);
  std::vector<NetId> stack;
  for (PortId p : nl.all_ports())
    if (!nl.port(p).is_input) stack.push_back(nl.port(p).net);

  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    if (live_net[n.index()]) continue;
    live_net[n.index()] = true;
    const NetDriver& d = nl.net(n).driver;
    if (d.kind != NetDriver::Kind::kInstance) continue;
    if (live_inst[d.inst.index()]) continue;
    live_inst[d.inst.index()] = true;
    for (NetId in : nl.instance(d.inst).inputs) stack.push_back(in);
  }
  // Input-port nets always survive (the interface is part of the design).
  for (PortId p : nl.all_ports())
    if (nl.port(p).is_input) live_net[nl.port(p).net.index()] = true;

  SweepResult result{Netlist(nl.name(), &nl.lib()), 0, 0};
  Netlist& out = result.nl;

  std::vector<NetId> net_map(nl.num_nets());
  for (PortId p : nl.all_ports()) {
    const Port& port = nl.port(p);
    if (!port.is_input) continue;
    const PortId np = out.add_input(port.name, port.ext_drive);
    net_map[port.net.index()] = out.port(np).net;
  }
  for (NetId n : nl.all_nets()) {
    if (!live_net[n.index()]) {
      ++result.removed_nets;
      continue;
    }
    if (net_map[n.index()].valid()) continue;  // input net, already made
    net_map[n.index()] = out.add_net(nl.net(n).name);
    out.net(net_map[n.index()]).length_um = nl.net(n).length_um;
    out.net(net_map[n.index()]).width_multiple = nl.net(n).width_multiple;
    out.net(net_map[n.index()]).extra_cap_units = nl.net(n).extra_cap_units;
  }

  for (InstanceId id : nl.all_instances()) {
    if (!live_inst[id.index()]) {
      ++result.removed_instances;
      continue;
    }
    const Instance& inst = nl.instance(id);
    std::vector<NetId> ins;
    ins.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      // A live instance may read a dead-marked net only if that net is
      // undriven side input — but reachability marked all inputs of live
      // instances, so this holds by construction.
      GAP_EXPECTS(live_net[in.index()]);
      ins.push_back(net_map[in.index()]);
    }
    const InstanceId ni =
        out.add_instance(inst.name, inst.cell, std::move(ins),
                         net_map[inst.output.index()]);
    Instance& copy = out.instance(ni);
    copy.drive_override = inst.drive_override;
    copy.clock_phase = inst.clock_phase;
    copy.x_um = inst.x_um;
    copy.y_um = inst.y_um;
    copy.module = inst.module;
  }

  for (PortId p : nl.all_ports()) {
    const Port& port = nl.port(p);
    if (port.is_input) continue;
    out.add_output(port.name, net_map[port.net.index()], 0.0);
  }

  GAP_ENSURES(verify(out).ok());
  return result;
}

Netlist apply_sweep_point(const Netlist& nl, const SweepPoint& point) {
  GAP_EXPECTS(point.wire_width_scale > 0.0);
  GAP_EXPECTS(point.wire_length_scale >= 0.0);
  GAP_EXPECTS(point.extra_cap_units >= 0.0);
  Netlist out = nl;
  for (NetId n : out.all_nets()) {
    Net& net = out.net(n);
    net.width_multiple *= point.wire_width_scale;
    net.length_um *= point.wire_length_scale;
    net.extra_cap_units += point.extra_cap_units;
  }
  return out;
}

std::vector<double> sweep_parameters(
    const Netlist& nl, const std::vector<SweepPoint>& points,
    const std::function<double(const Netlist&)>& metric,
    const ParamSweepOptions& options) {
  GAP_EXPECTS(metric != nullptr);
  // Each lane evaluates whole points on private copies; the base netlist
  // is only read. Point order in the result never depends on threads.
  return common::parallel_map(
      options.threads, points.size(), [&](std::size_t i) {
        return metric(apply_sweep_point(nl, points[i]));
      });
}

}  // namespace gap::netlist
