#pragma once
/// \file sweep.hpp
/// Dead-logic sweep: rebuild a netlist keeping only instances that
/// (transitively) reach a primary output. Transform passes in this
/// repository never delete in place (ids stay stable); this pass is the
/// complementary garbage collection, used after experiments that orphan
/// logic (mapping leftovers, hold fixing on removed paths, ...).

#include "netlist/netlist.hpp"

namespace gap::netlist {

struct SweepResult {
  Netlist nl;
  std::size_t removed_instances = 0;
  std::size_t removed_nets = 0;
};

/// Rebuild without dead logic. Port order and names are preserved; live
/// instances keep their cells, drive overrides and placement.
[[nodiscard]] SweepResult sweep_dead(const Netlist& nl);

}  // namespace gap::netlist
