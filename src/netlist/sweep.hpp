#pragma once
/// \file sweep.hpp
/// Netlist sweeps, in both senses:
///
///  - dead-logic sweep: rebuild a netlist keeping only instances that
///    (transitively) reach a primary output. Transform passes in this
///    repository never delete in place (ids stay stable); this pass is
///    the complementary garbage collection, used after experiments that
///    orphan logic (mapping leftovers, hold fixing on removed paths, ...);
///  - parameter sweep: evaluate a metric over systematically perturbed
///    copies of the netlist (wire width / length / extra load scaling) —
///    the what-if grids behind wire-sizing and repeater studies. Points
///    are independent, so the sweep fans out over a
///    gap::common::ThreadPool; results come back in point order and are
///    bit-identical at any thread count.

#include <cstddef>
#include <functional>
#include <vector>

#include "netlist/netlist.hpp"

namespace gap::netlist {

struct SweepResult {
  Netlist nl;
  std::size_t removed_instances = 0;
  std::size_t removed_nets = 0;
};

/// Rebuild without dead logic. Port order and names are preserved; live
/// instances keep their cells, drive overrides and placement.
[[nodiscard]] SweepResult sweep_dead(const Netlist& nl);

/// One point of a parameter sweep: multiplicative perturbations applied
/// to every net of a copy of the base netlist.
struct SweepPoint {
  double wire_width_scale = 1.0;   ///< scales Net::width_multiple
  double wire_length_scale = 1.0;  ///< scales Net::length_um
  double extra_cap_units = 0.0;    ///< added to Net::extra_cap_units
};

struct ParamSweepOptions {
  /// 0 = hardware concurrency, 1 = serial loop (see common/thread_pool).
  int threads = 1;
};

/// The perturbed copy a sweep point evaluates (exposed for tests and for
/// callers that want the best point's netlist back).
[[nodiscard]] Netlist apply_sweep_point(const Netlist& nl,
                                        const SweepPoint& point);

/// Evaluate `metric` on the perturbed copy at every point. Results are
/// in point order, independent of thread count.
[[nodiscard]] std::vector<double> sweep_parameters(
    const Netlist& nl, const std::vector<SweepPoint>& points,
    const std::function<double(const Netlist&)>& metric,
    const ParamSweepOptions& options = {});

}  // namespace gap::netlist
