#include "netlist/sequential_sim.hpp"

#include "common/check.hpp"
#include "netlist/checks.hpp"

namespace gap::netlist {
namespace {

std::uint64_t eval_comb(library::Func f, const std::vector<std::uint64_t>& in) {
  using library::Func;
  switch (f) {
    case Func::kInv: return ~in[0];
    case Func::kBuf: return in[0];
    case Func::kNand2: return ~(in[0] & in[1]);
    case Func::kNand3: return ~(in[0] & in[1] & in[2]);
    case Func::kNand4: return ~(in[0] & in[1] & in[2] & in[3]);
    case Func::kNor2: return ~(in[0] | in[1]);
    case Func::kNor3: return ~(in[0] | in[1] | in[2]);
    case Func::kAnd2: return in[0] & in[1];
    case Func::kAnd3: return in[0] & in[1] & in[2];
    case Func::kOr2: return in[0] | in[1];
    case Func::kOr3: return in[0] | in[1] | in[2];
    case Func::kXor2: return in[0] ^ in[1];
    case Func::kXnor2: return ~(in[0] ^ in[1]);
    case Func::kAoi21: return ~((in[0] & in[1]) | in[2]);
    case Func::kOai21: return ~((in[0] | in[1]) & in[2]);
    case Func::kMux2: return (in[2] & in[1]) | (~in[2] & in[0]);
    case Func::kMaj3:
      return (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2]);
    case Func::kDff:
    case Func::kLatch:
      GAP_EXPECTS(false);  // sequential cells never evaluate here
  }
  return 0;
}

}  // namespace

SequentialSimulator::SequentialSimulator(const Netlist& nl) : nl_(nl) {
  const auto order = topo_order(nl_);
  GAP_EXPECTS(order.size() == nl_.num_instances());
  for (InstanceId id : order) {
    if (nl_.is_sequential(id))
      registers_.push_back(id);
    else
      comb_order_.push_back(id);
  }
  state_.assign(registers_.size(), 0);
  net_val_.assign(nl_.num_nets(), 0);
  std::size_t n_in = 0;
  for (PortId p : nl_.all_ports())
    if (nl_.port(p).is_input) ++n_in;
  pi_.assign(n_in, 0);
}

void SequentialSimulator::reset() {
  state_.assign(registers_.size(), 0);
  net_val_.assign(nl_.num_nets(), 0);
  pi_.assign(pi_.size(), 0);
  cycle_ = 0;
}

void SequentialSimulator::propagate() {
  // Register outputs from state, primary inputs from the latched words.
  for (std::size_t r = 0; r < registers_.size(); ++r)
    net_val_[nl_.instance(registers_[r]).output.index()] = state_[r];
  std::size_t k = 0;
  for (PortId p : nl_.all_ports())
    if (nl_.port(p).is_input) net_val_[nl_.port(p).net.index()] = pi_[k++];

  std::vector<std::uint64_t> in;
  for (InstanceId id : comb_order_) {
    const Instance& inst = nl_.instance(id);
    in.clear();
    for (NetId n : inst.inputs) in.push_back(net_val_[n.index()]);
    net_val_[inst.output.index()] = eval_comb(nl_.cell_of(id).func, in);
  }
}

std::vector<std::uint64_t> SequentialSimulator::step(
    const std::vector<std::uint64_t>& pi_values) {
  GAP_EXPECTS(pi_values.size() == pi_.size());

  // Clock edge: every register captures the D value computed during the
  // previous cycle's propagation.
  std::vector<std::uint64_t> captured(registers_.size());
  for (std::size_t r = 0; r < registers_.size(); ++r)
    captured[r] = net_val_[nl_.instance(registers_[r]).inputs[0].index()];
  state_ = std::move(captured);
  ++cycle_;

  pi_ = pi_values;
  propagate();

  std::vector<std::uint64_t> out;
  for (PortId p : nl_.all_ports())
    if (!nl_.port(p).is_input)
      out.push_back(net_val_[nl_.port(p).net.index()]);
  return out;
}

}  // namespace gap::netlist
