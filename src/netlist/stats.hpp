#pragma once
/// \file stats.hpp
/// Summary statistics of a netlist for reports and examples.

#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace gap::netlist {

struct NetlistStats {
  std::size_t instances = 0;
  std::size_t sequential = 0;
  std::size_t nets = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  int logic_depth = 0;
  double area_um2 = 0.0;
  std::map<std::string, std::size_t> cells_by_func;
};

[[nodiscard]] NetlistStats collect_stats(const Netlist& nl);

/// Human-readable one-block summary.
[[nodiscard]] std::string format_stats(const NetlistStats& s);

}  // namespace gap::netlist
