#include "dft/scan.hpp"

#include "common/check.hpp"
#include "netlist/checks.hpp"

namespace gap::dft {

using library::Family;
using library::Func;
using netlist::Netlist;

ScanResult insert_scan(Netlist& nl) {
  const library::CellLibrary& lib = nl.lib();
  GAP_EXPECTS(lib.has(Func::kMux2, Family::kStatic));

  // Stitch in a deterministic order: the instance index order of the
  // flip-flops (real tools order by placement; equivalent for tests).
  std::vector<InstanceId> flops;
  for (InstanceId id : nl.all_instances())
    if (nl.cell_of(id).func == Func::kDff) flops.push_back(id);
  GAP_EXPECTS(!flops.empty());

  ScanResult r;
  r.scan_enable = nl.add_input("scan_enable");
  r.scan_in = nl.add_input("scan_in");
  const NetId se = nl.port(r.scan_enable).net;
  NetId chain = nl.port(r.scan_in).net;

  const CellId mux = *lib.smallest(Func::kMux2, Family::kStatic);
  for (InstanceId f : flops) {
    const NetId d = nl.instance(f).inputs[0];
    const NetId muxed = nl.add_net(nl.fresh_name("scan_d"));
    // mux2(a, b, s) = s ? b : a — functional data on a, scan on b.
    nl.add_instance(nl.fresh_name("scan_mux"), mux, {d, chain, se}, muxed);
    nl.rewire_input(f, 0, muxed);
    chain = nl.instance(f).output;
    ++r.chain_length;
    ++r.muxes_added;
  }
  r.scan_out = nl.add_output("scan_out", chain, 0.0);

  GAP_ENSURES(netlist::verify(nl).ok());
  return r;
}

}  // namespace gap::dft
