#pragma once
/// \file scan.hpp
/// Scan-chain insertion — a concrete piece of the register overhead the
/// paper attributes to ASIC methodology (sections 4.1 and 6.1: ASIC
/// registers carry guard banding and extra circuitry that custom designs
/// avoid). Every flip-flop gets a mux in front of its D pin; in scan mode
/// the flops form one long shift register through which test vectors are
/// loaded and results unloaded. The mux costs one extra logic level on
/// every register-bound path — a measurable tax on cycle time.

#include "netlist/netlist.hpp"

namespace gap::dft {

struct ScanResult {
  int chain_length = 0;   ///< flip-flops stitched into the chain
  int muxes_added = 0;
  PortId scan_enable;     ///< added primary input
  PortId scan_in;         ///< added primary input
  PortId scan_out;        ///< added primary output
};

/// Insert a single scan chain through every DFF of `nl`, in instance
/// order. The netlist must contain at least one flip-flop and the
/// library a mux2 cell. Functional behaviour is unchanged when
/// scan_enable = 0; with scan_enable = 1 the flops shift scan_in towards
/// scan_out, one rank per cycle.
ScanResult insert_scan(netlist::Netlist& nl);

}  // namespace gap::dft
