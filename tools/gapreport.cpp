/// \file gapreport.cpp
/// QoR manifest viewer and differ. All logic lives in
/// gap::qor::run_gapreport (src/qor/report_cli.cpp) so the test suite can
/// exercise it in-process; this file is only the process entry point.

#include <iostream>

#include "qor/report_cli.hpp"

int main(int argc, char** argv) {
  return gap::qor::run_gapreport(argc - 1, argv + 1, std::cout, std::cerr);
}
