#!/usr/bin/env bash
# tools/check.sh — build & test gate for the parallel execution layer and
# the robustness (fault-injection) layer.
#
#   tools/check.sh          # TSan pass + ASan/UBSan pass
#   tools/check.sh tsan     # ThreadSanitizer pass only
#   tools/check.sh asan     # ASan/UBSan fault-injection pass only
#   tools/check.sh bench    # quick benchmarks + strict gate vs BENCH_baseline.json
#   tools/check.sh obs      # observability suite (ctest -L obs) under TSan
#   tools/check.sh all      # both sanitizer passes + regular build + full ctest
#
# Each mode's wall-clock duration is printed at exit, so slow gates are
# visible at a glance (and CI log triage doesn't need timestamps).
#
# The ThreadSanitizer pass: gap::common::ThreadPool and its consumers
# (MC-STA, parameter sweeps, variation binning, incremental-STA
# wavefronts) must be race-free at any thread count, not merely
# deterministic.
#
# The ASan/UBSan pass: the untrusted-input readers must reject hundreds of
# mutated Liberty/Verilog inputs without aborting AND without any latent
# memory or UB errors masked by a clean exit.
#
# Build trees default to build-tsan / build-asan / build-bench /
# build-obs next to the primary build/, overridable so CI and local runs
# never collide:
#
#   GAP_BUILD_TSAN=/tmp/ci-tsan GAP_BUILD_ASAN=/tmp/ci-asan tools/check.sh

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-sanitizers}"
case "$MODE" in
  sanitizers|tsan|asan|bench|obs|all) ;;
  *)
    echo "check.sh: unknown mode '$MODE' (expected: tsan | asan | bench | obs | all)" >&2
    exit 2
    ;;
esac

# Fail fast, with a message naming the missing prerequisite, instead of
# dying on an opaque cmake backtrace halfway through.
require() {
  if ! command -v "$1" >/dev/null 2>&1; then
    echo "check.sh: prerequisite '$1' not found in PATH — $2" >&2
    exit 3
  fi
}
require cmake "install CMake >= 3.16 (e.g. 'apt install cmake')"
if ! command -v c++ >/dev/null 2>&1 && ! command -v g++ >/dev/null 2>&1 \
    && ! command -v clang++ >/dev/null 2>&1; then
  echo "check.sh: no C++ compiler (c++/g++/clang++) found in PATH — install g++ or clang" >&2
  exit 3
fi

JOBS="${JOBS:-$(nproc)}"
BUILD_TSAN="${GAP_BUILD_TSAN:-build-tsan}"
BUILD_ASAN="${GAP_BUILD_ASAN:-build-asan}"
BUILD_BENCH="${GAP_BUILD_BENCH:-build-bench}"
BUILD_OBS="${GAP_BUILD_OBS:-build-obs}"

# Per-mode wall clock, printed even when a gate fails partway through.
MODE_TIMES=""
print_mode_times() {
  if [ -n "$MODE_TIMES" ]; then
    echo "== wall durations =="
    printf '%b' "$MODE_TIMES"
  fi
}
trap print_mode_times EXIT
timed() {
  local label="$1"
  shift
  local start=$SECONDS
  "$@"
  MODE_TIMES="${MODE_TIMES}  ${label}: $((SECONDS - start))s\n"
}

run_tsan() {
  echo "== ThreadSanitizer build ($BUILD_TSAN) =="
  cmake -B "$BUILD_TSAN" -S . -DGAP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_TSAN" -j "$JOBS" \
    --target parallel_test sta_test incremental_sta_test soa_graph_test

  echo "== parallel_test under TSan =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_TSAN/tests/parallel_test"

  echo "== sta_test under TSan =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_TSAN/tests/sta_test"

  echo "== incremental_sta_test under TSan =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_TSAN/tests/incremental_sta_test"

  echo "== soa_graph_test under TSan =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_TSAN/tests/soa_graph_test"
}

run_asan() {
  echo "== ASan/UBSan build ($BUILD_ASAN) =="
  cmake -B "$BUILD_ASAN" -S . -DGAP_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_ASAN" -j "$JOBS" \
    --target fault_injection_test io_test diagnostics_test

  echo "== fault_injection_test under ASan/UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_ASAN/tests/fault_injection_test"

  echo "== io_test under ASan/UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_ASAN/tests/io_test"

  echo "== diagnostics_test under ASan/UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_ASAN/tests/diagnostics_test"
}

# The bench gate, exactly as CI runs it: quick-mode microbenchmarks in a
# Release tree, compared strictly against the committed baseline. A >15%
# regression on any benchmark exits non-zero. After an intentional perf
# change, refresh the baseline (docs/benchmarks.md):
#
#   python3 tools/bench_compare.py build-bench/BENCH_local.json \
#     --baseline BENCH_baseline.json --write-baseline
run_bench() {
  require python3 "needed by tools/bench_compare.py"
  echo "== bench gate build ($BUILD_BENCH) =="
  cmake -B "$BUILD_BENCH" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_BENCH" -j "$JOBS" --target bench_perf_tools

  echo "== bench_perf_tools (quick mode) =="
  GAP_BENCH_QUICK=1 "$BUILD_BENCH/bench/bench_perf_tools" \
    --benchmark_format=json \
    --benchmark_out="$BUILD_BENCH/BENCH_local.json" \
    --benchmark_out_format=json

  echo "== strict compare vs BENCH_baseline.json =="
  python3 tools/bench_compare.py "$BUILD_BENCH/BENCH_local.json" \
    --baseline BENCH_baseline.json --threshold 0.15 --strict
}

# The observability gate: the obs-labeled suite (exposition rendering,
# flight-recorder wraparound and concurrent-writer snapshots, gapstat,
# wavefront profiling, gapd telemetry determinism, the out-of-process
# SIGTERM drain) under ThreadSanitizer. The flight recorder's seqlock
# ring and the telemetry counters on the STA hot path claim race-freedom,
# not just determinism — TSan is what makes that claim load-bearing
# (docs/observability.md).
run_obs() {
  echo "== observability build ($BUILD_OBS, TSan) =="
  cmake -B "$BUILD_OBS" -S . -DGAP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_OBS" -j "$JOBS" --target obs_test gapd

  echo "== obs-labeled suite under TSan (ctest -L obs) =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD_OBS" -L obs --output-on-failure -j "$JOBS"
}

case "$MODE" in
  tsan) timed tsan run_tsan ;;
  asan) timed asan run_asan ;;
  bench) timed bench run_bench ;;
  obs) timed obs run_obs ;;
  sanitizers)
    timed tsan run_tsan
    timed asan run_asan
    ;;
  all)
    timed tsan run_tsan
    timed asan run_asan
    timed obs run_obs
    run_full() {
      echo "== regular build + full test suite =="
      cmake -B build -S .
      cmake --build build -j "$JOBS"
      ctest --test-dir build --output-on-failure -j "$JOBS"
    }
    timed full run_full
    ;;
esac

echo "check.sh: OK"
