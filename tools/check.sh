#!/usr/bin/env bash
# tools/check.sh — build & test gate for the parallel execution layer.
#
#   tools/check.sh          # TSan build, then run parallel_test + sta_test
#   tools/check.sh all      # additionally: regular build + full ctest suite
#
# The ThreadSanitizer pass is the point: gap::common::ThreadPool and its
# consumers (MC-STA, parameter sweeps, variation binning) must be race-free
# at any thread count, not merely deterministic. Uses a separate build tree
# (build-tsan) so it never perturbs the primary build/.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== ThreadSanitizer build (build-tsan) =="
cmake -B build-tsan -S . -DGAP_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target parallel_test sta_test

echo "== parallel_test under TSan =="
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ./build-tsan/tests/parallel_test

echo "== sta_test under TSan =="
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ./build-tsan/tests/sta_test

if [[ "${1:-}" == "all" ]]; then
  echo "== regular build + full test suite =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
fi

echo "check.sh: OK"
