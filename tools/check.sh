#!/usr/bin/env bash
# tools/check.sh — build & test gate for the parallel execution layer and
# the robustness (fault-injection) layer.
#
#   tools/check.sh          # TSan pass + ASan/UBSan fault-injection pass
#   tools/check.sh all      # additionally: regular build + full ctest suite
#
# The ThreadSanitizer pass: gap::common::ThreadPool and its consumers
# (MC-STA, parameter sweeps, variation binning) must be race-free at any
# thread count, not merely deterministic.
#
# The ASan/UBSan pass: the untrusted-input readers must reject hundreds of
# mutated Liberty/Verilog inputs without aborting AND without any latent
# memory or UB errors masked by a clean exit. Both passes reuse the
# GAP_SANITIZE cache option and separate build trees (build-tsan,
# build-asan) so they never perturb the primary build/.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== ThreadSanitizer build (build-tsan) =="
cmake -B build-tsan -S . -DGAP_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS" --target parallel_test sta_test

echo "== parallel_test under TSan =="
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ./build-tsan/tests/parallel_test

echo "== sta_test under TSan =="
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ./build-tsan/tests/sta_test

echo "== ASan/UBSan build (build-asan) =="
cmake -B build-asan -S . -DGAP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS" \
  --target fault_injection_test io_test diagnostics_test

echo "== fault_injection_test under ASan/UBSan =="
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
  ./build-asan/tests/fault_injection_test

echo "== io_test under ASan/UBSan =="
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" ./build-asan/tests/io_test

echo "== diagnostics_test under ASan/UBSan =="
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
  ./build-asan/tests/diagnostics_test

if [[ "${1:-}" == "all" ]]; then
  echo "== regular build + full test suite =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
fi

echo "check.sh: OK"
