#!/usr/bin/env bash
# tools/check.sh — build & test gate for the parallel execution layer and
# the robustness (fault-injection) layer.
#
#   tools/check.sh          # TSan pass + ASan/UBSan pass
#   tools/check.sh tsan     # ThreadSanitizer pass only
#   tools/check.sh asan     # ASan/UBSan fault-injection pass only
#   tools/check.sh all      # both passes + regular build + full ctest suite
#
# The ThreadSanitizer pass: gap::common::ThreadPool and its consumers
# (MC-STA, parameter sweeps, variation binning, incremental-STA
# wavefronts) must be race-free at any thread count, not merely
# deterministic.
#
# The ASan/UBSan pass: the untrusted-input readers must reject hundreds of
# mutated Liberty/Verilog inputs without aborting AND without any latent
# memory or UB errors masked by a clean exit.
#
# Build trees default to build-tsan / build-asan next to the primary
# build/, overridable so CI and local runs never collide:
#
#   GAP_BUILD_TSAN=/tmp/ci-tsan GAP_BUILD_ASAN=/tmp/ci-asan tools/check.sh

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-sanitizers}"
case "$MODE" in
  sanitizers|tsan|asan|all) ;;
  *)
    echo "check.sh: unknown mode '$MODE' (expected: tsan | asan | all)" >&2
    exit 2
    ;;
esac

# Fail fast, with a message naming the missing prerequisite, instead of
# dying on an opaque cmake backtrace halfway through.
require() {
  if ! command -v "$1" >/dev/null 2>&1; then
    echo "check.sh: prerequisite '$1' not found in PATH — $2" >&2
    exit 3
  fi
}
require cmake "install CMake >= 3.16 (e.g. 'apt install cmake')"
if ! command -v c++ >/dev/null 2>&1 && ! command -v g++ >/dev/null 2>&1 \
    && ! command -v clang++ >/dev/null 2>&1; then
  echo "check.sh: no C++ compiler (c++/g++/clang++) found in PATH — install g++ or clang" >&2
  exit 3
fi

JOBS="${JOBS:-$(nproc)}"
BUILD_TSAN="${GAP_BUILD_TSAN:-build-tsan}"
BUILD_ASAN="${GAP_BUILD_ASAN:-build-asan}"

run_tsan() {
  echo "== ThreadSanitizer build ($BUILD_TSAN) =="
  cmake -B "$BUILD_TSAN" -S . -DGAP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_TSAN" -j "$JOBS" \
    --target parallel_test sta_test incremental_sta_test

  echo "== parallel_test under TSan =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_TSAN/tests/parallel_test"

  echo "== sta_test under TSan =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_TSAN/tests/sta_test"

  echo "== incremental_sta_test under TSan =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_TSAN/tests/incremental_sta_test"
}

run_asan() {
  echo "== ASan/UBSan build ($BUILD_ASAN) =="
  cmake -B "$BUILD_ASAN" -S . -DGAP_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_ASAN" -j "$JOBS" \
    --target fault_injection_test io_test diagnostics_test

  echo "== fault_injection_test under ASan/UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_ASAN/tests/fault_injection_test"

  echo "== io_test under ASan/UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_ASAN/tests/io_test"

  echo "== diagnostics_test under ASan/UBSan =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_ASAN/tests/diagnostics_test"
}

case "$MODE" in
  tsan) run_tsan ;;
  asan) run_asan ;;
  sanitizers) run_tsan; run_asan ;;
  all)
    run_tsan
    run_asan
    echo "== regular build + full test suite =="
    cmake -B build -S .
    cmake --build build -j "$JOBS"
    ctest --test-dir build --output-on-failure -j "$JOBS"
    ;;
esac

echo "check.sh: OK"
