/// \file gapflow.cpp
/// Command-line driver for the implementation flow — the tool a
/// downstream user actually runs:
///
///   gapflow --design alu32 --methodology custom --report all
///   gapflow --design mac16 --stages 4 --corner worst
///           --write-verilog mac16.v --write-liberty rich.lib
///   gapflow --check-verilog mac16.v --diagnostics
///   gapflow --list-designs
///
/// All logic lives in core/driver.{hpp,cpp} so the argument handling and
/// exit codes are covered by tests/driver_test.cpp; this file only binds
/// it to the process: SIGPIPE is ignored and a broken stdout (reader
/// closed the pipe mid-report) exits 5 with a diagnostic instead of a
/// silent signal death (common/io_guard.hpp).

#include <iostream>

#include "common/io_guard.hpp"
#include "core/driver.hpp"

int main(int argc, char** argv) {
  gap::common::ignore_sigpipe();
  const int code = gap::core::cli::run(argc, argv, std::cout, std::cerr);
  return gap::common::finish_stdout(code, std::cout, std::cerr, "gapflow");
}
