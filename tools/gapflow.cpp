/// \file gapflow.cpp
/// Command-line driver for the implementation flow — the tool a
/// downstream user actually runs:
///
///   gapflow --design alu32 --methodology custom --report all
///   gapflow --design mac16 --stages 4 --corner worst
///           --write-verilog mac16.v --write-liberty rich.lib
///   gapflow --check-verilog mac16.v --diagnostics
///   gapflow --list-designs
///
/// All logic lives in core/driver.{hpp,cpp} so the argument handling and
/// exit codes are covered by tests/driver_test.cpp; this file only binds
/// it to the process.

#include <iostream>

#include "core/driver.hpp"

int main(int argc, char** argv) {
  return gap::core::cli::run(argc, argv, std::cout, std::cerr);
}
