/// \file gapflow.cpp
/// Command-line driver for the implementation flow — the tool a
/// downstream user actually runs:
///
///   gapflow --design alu32 --methodology custom --report all
///   gapflow --design mac16 --stages 4 --corner worst
///           --write-verilog mac16.v --write-liberty rich.lib
///   gapflow --list-designs
///
/// Output: implementation summary, optional timing/power reports, and
/// optional Verilog / Liberty dumps of the implemented netlist and the
/// library it was built in.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "common/table.hpp"
#include "core/flow.hpp"
#include "core/gap.hpp"
#include "designs/registry.hpp"
#include "dft/scan.hpp"
#include "noise/crosstalk.hpp"
#include "library/liberty.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"
#include "power/power.hpp"
#include "sta/report.hpp"
#include "sta/statistical.hpp"

namespace {

using namespace gap;

struct Args {
  std::string design = "alu32";
  std::string methodology = "reference";
  std::string tech = "asic025";
  std::string report;           // "", "timing", "power", "all"
  std::string verilog_out;
  std::string liberty_out;
  std::optional<int> stages;
  std::optional<std::string> corner;
  int mc_samples = 0;
  int threads = 0;
  bool macro_style = false;
  bool scan = false;
  bool list_designs = false;
  bool help = false;
};

void print_help() {
  std::printf(
      "gapflow — implement a design and report timing/power\n\n"
      "usage: gapflow [options]\n"
      "  --design NAME          design from the registry (default alu32)\n"
      "  --list-designs         print available designs and exit\n"
      "  --methodology M        typical | good | custom | reference\n"
      "  --tech T               asic025 | custom025 | ibm018 | asic035\n"
      "  --stages N             override pipeline stage count\n"
      "  --corner C             typical | worst | conservative | fast\n"
      "  --macro                use macro-cell datapath style\n"
      "  --scan                 insert a scan chain before signoff\n"
      "  --report R             timing | power | noise | all\n"
      "  --mc N                 Monte Carlo statistical signoff, N samples\n"
      "  --threads N            fan-out thread count (0 = all cores);\n"
      "                         results are identical at any setting\n"
      "  --write-verilog FILE   dump the implemented netlist\n"
      "  --write-liberty FILE   dump the methodology's cell library\n"
      "  --help                 this text\n");
}

std::optional<Args> parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (flag == "--help") a.help = true;
    else if (flag == "--list-designs") a.list_designs = true;
    else if (flag == "--macro") a.macro_style = true;
    else if (flag == "--scan") a.scan = true;
    else if (flag == "--design") {
      if (auto v = value()) a.design = *v; else return std::nullopt;
    } else if (flag == "--methodology") {
      if (auto v = value()) a.methodology = *v; else return std::nullopt;
    } else if (flag == "--tech") {
      if (auto v = value()) a.tech = *v; else return std::nullopt;
    } else if (flag == "--report") {
      if (auto v = value()) a.report = *v; else return std::nullopt;
    } else if (flag == "--write-verilog") {
      if (auto v = value()) a.verilog_out = *v; else return std::nullopt;
    } else if (flag == "--write-liberty") {
      if (auto v = value()) a.liberty_out = *v; else return std::nullopt;
    } else if (flag == "--stages") {
      if (auto v = value()) a.stages = std::stoi(*v); else return std::nullopt;
    } else if (flag == "--mc") {
      if (auto v = value()) a.mc_samples = std::stoi(*v);
      else return std::nullopt;
    } else if (flag == "--threads") {
      if (auto v = value()) a.threads = std::stoi(*v);
      else return std::nullopt;
      if (a.threads < 0) return std::nullopt;
    } else if (flag == "--corner") {
      if (auto v = value()) a.corner = *v; else return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return std::nullopt;
    }
  }
  return a;
}

std::optional<tech::Technology> tech_of(const std::string& name) {
  if (name == "asic025") return tech::asic_025um();
  if (name == "custom025") return tech::custom_025um();
  if (name == "ibm018") return tech::ibm_018um();
  if (name == "asic035") return tech::asic_035um();
  return std::nullopt;
}

std::optional<core::Methodology> methodology_of(const std::string& name) {
  if (name == "typical") return core::typical_asic();
  if (name == "good") return core::good_asic();
  if (name == "custom") return core::full_custom();
  if (name == "reference") return core::reference_methodology();
  return std::nullopt;
}

std::optional<tech::ProcessCorner> corner_of(const std::string& name) {
  if (name == "typical") return tech::corner_typical();
  if (name == "worst") return tech::corner_worst_case();
  if (name == "conservative") return tech::corner_conservative();
  if (name == "fast") return tech::corner_fast_bin();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) {
    print_help();
    return 2;
  }
  const Args& args = *parsed;
  if (args.help) {
    print_help();
    return 0;
  }
  if (args.list_designs) {
    for (const std::string& name : designs::design_names())
      std::printf("%s\n", name.c_str());
    return 0;
  }

  const auto t = tech_of(args.tech);
  auto m = methodology_of(args.methodology);
  if (!t || !m) {
    std::fprintf(stderr, "unknown --tech or --methodology\n");
    return 2;
  }
  if (args.stages) m->pipeline_stages = *args.stages;
  if (args.corner) {
    const auto c = corner_of(*args.corner);
    if (!c) {
      std::fprintf(stderr, "unknown --corner\n");
      return 2;
    }
    m->corner = *c;
  }
  if (args.macro_style) m->datapath = designs::DatapathStyle::kMacro;

  bool known = false;
  for (const std::string& name : designs::design_names())
    if (name == args.design) known = true;
  if (!known) {
    std::fprintf(stderr, "unknown design '%s' (--list-designs)\n",
                 args.design.c_str());
    return 2;
  }

  core::Flow flow(*t);
  const auto design = designs::make_design(args.design, m->datapath);
  core::FlowResult r = flow.run(design, *m);

  sta::StaOptions sta_opt;
  sta_opt.corner_delay_factor = m->corner.delay_factor;
  sta_opt.clock.skew_fraction = m->skew_fraction;
  sta_opt.optimal_repeaters = m->optimal_repeaters;

  if (args.scan) {
    const auto scan = dft::insert_scan(*r.nl);
    std::printf("scan chain inserted: %d flops, %d muxes\n",
                scan.chain_length, scan.muxes_added);
    r.timing = sta::analyze(*r.nl, sta_opt);
    r.freq_mhz = r.timing.frequency_mhz();
    r.area_um2 = r.nl->total_area_um2();
  }

  std::printf("gapflow: %s under %s in %s\n\n", args.design.c_str(),
              m->name.c_str(), t->name.c_str());
  const auto stats = netlist::collect_stats(*r.nl);
  std::printf("  frequency : %.0f MHz (%.1f FO4/cycle)\n", r.freq_mhz,
              r.timing.min_period_fo4);
  std::printf("  area      : %.0f um^2 (%zu instances, %zu registers)\n",
              r.area_um2, stats.instances, stats.sequential);
  std::printf("  die       : %.0f x %.0f um\n", r.die_w_um, r.die_h_um);
  std::printf("  stages    : %d (%d registers inserted)\n\n",
              m->pipeline_stages, r.pipeline_registers);

  if (args.report == "timing" || args.report == "all") {
    std::printf("%s\n",
                sta::format_critical_path(*r.nl, sta_opt, r.timing).c_str());
    std::printf("%s\n",
                sta::format_slack_histogram(*r.nl, sta_opt,
                                            r.timing.min_period_tau)
                    .c_str());
  }
  if (args.report == "power" || args.report == "all") {
    power::PowerOptions popt;
    popt.freq_mhz = r.freq_mhz;
    const auto p = power::estimate_power(*r.nl, popt);
    std::printf("power @ %.0f MHz:\n", r.freq_mhz);
    std::printf("  dynamic   : %.2f mW\n", p.dynamic_mw);
    std::printf("  clock     : %.2f mW\n", p.clock_mw);
    std::printf("  precharge : %.2f mW\n", p.precharge_mw);
    std::printf("  leakage   : %.3f mW\n", p.leakage_mw);
    std::printf("  total     : %.2f mW (%.1f MHz/mW)\n\n", p.total_mw(),
                r.freq_mhz / p.total_mw());
  }

  if (args.mc_samples > 0) {
    sta::McStaOptions mc;
    mc.base = sta_opt;
    mc.samples = args.mc_samples;
    mc.threads = args.threads;
    const auto r_mc = sta::monte_carlo_sta(*r.nl, mc);
    const double med = r_mc.period_tau.quantile(0.5);
    std::printf("statistical signoff (%d samples, %d thread(s)):\n",
                mc.samples, args.threads);
    std::printf("  nominal   : %.1f tau (%.0f MHz at signoff corner)\n",
                r_mc.nominal_period_tau, r.freq_mhz);
    std::printf("  median    : %.1f tau (mean shift %+.1f%%)\n", med,
                100.0 * r_mc.mean_shift());
    std::printf("  q05..q95  : %.1f .. %.1f tau (spread %.1f%%)\n\n",
                r_mc.period_tau.quantile(0.05), r_mc.period_tau.quantile(0.95),
                100.0 * r_mc.relative_spread());
  }

  if (args.report == "noise" || args.report == "all") {
    const auto noise = noise::analyze_noise(*r.nl, noise::NoiseOptions{});
    std::printf("crosstalk: worst bump %.2f Vdd, %zu static / %zu domino "
                "margin failures over %zu coupled nets\n\n",
                noise.worst_bump_fraction, noise.static_failures,
                noise.domino_failures, noise.nets.size());
  }

  if (!args.verilog_out.empty()) {
    std::ofstream os(args.verilog_out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", args.verilog_out.c_str());
      return 1;
    }
    netlist::write_verilog(*r.nl, os);
    std::printf("wrote %s\n", args.verilog_out.c_str());
  }
  if (!args.liberty_out.empty()) {
    std::ofstream os(args.liberty_out);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", args.liberty_out.c_str());
      return 1;
    }
    library::write_liberty(flow.library_for(m->library), os);
    std::printf("wrote %s\n", args.liberty_out.c_str());
  }
  return 0;
}
