/// \file gapd.cpp
/// Resident timing-service daemon. All logic lives in
/// gap::serve::run_gapd (src/serve/serve_cli.cpp) so the test suite can
/// exercise it in-process; this file only binds it to the process:
/// SIGPIPE is ignored and a broken stdout exits 5 with a diagnostic
/// (common/io_guard.hpp).

#include <iostream>

#include "common/io_guard.hpp"
#include "serve/serve_cli.hpp"

int main(int argc, char** argv) {
  gap::common::ignore_sigpipe();
  const int code = gap::serve::run_gapd(argc - 1, argv + 1, std::cin,
                                        std::cout, std::cerr);
  return gap::common::finish_stdout(code, std::cout, std::cerr, "gapd");
}
