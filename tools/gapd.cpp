/// \file gapd.cpp
/// Resident timing-service daemon. All logic lives in
/// gap::serve::run_gapd (src/serve/serve_cli.cpp) so the test suite can
/// exercise it in-process; this file only binds it to the process:
/// SIGPIPE is ignored, a broken stdout exits 5 with a diagnostic
/// (common/io_guard.hpp), and SIGTERM drains through the interruptible
/// stdin stream (serve_cli.hpp).

#include <iostream>

#include "common/io_guard.hpp"
#include "serve/serve_cli.hpp"

int main(int argc, char** argv) {
  gap::common::ignore_sigpipe();
  gap::serve::install_sigterm_dump();
  const int code =
      gap::serve::run_gapd(argc - 1, argv + 1, gap::serve::sigterm_stdin(),
                           std::cout, std::cerr);
  return gap::common::finish_stdout(code, std::cout, std::cerr, "gapd");
}
