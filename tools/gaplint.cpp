/// \file gaplint.cpp
/// Design static-analysis CLI. All logic lives in gap::lint::run_gaplint
/// (src/lint/lint_cli.cpp) so the test suite can exercise it in-process;
/// this file is only the process entry point.

#include <iostream>

#include "lint/lint_cli.hpp"

int main(int argc, char** argv) {
  return gap::lint::run_gaplint(argc - 1, argv + 1, std::cout, std::cerr);
}
