/// \file gaplint.cpp
/// Design static-analysis CLI. All logic lives in gap::lint::run_gaplint
/// (src/lint/lint_cli.cpp) so the test suite can exercise it in-process;
/// this file only binds it to the process: SIGPIPE is ignored and a
/// broken stdout exits 5 with a diagnostic (common/io_guard.hpp).

#include <iostream>

#include "common/io_guard.hpp"
#include "lint/lint_cli.hpp"

int main(int argc, char** argv) {
  gap::common::ignore_sigpipe();
  const int code =
      gap::lint::run_gaplint(argc - 1, argv + 1, std::cout, std::cerr);
  return gap::common::finish_stdout(code, std::cout, std::cerr, "gaplint");
}
