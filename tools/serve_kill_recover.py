#!/usr/bin/env python3
"""SIGKILL crash-recovery differential for gapd.

Drives a real gapd subprocess with a journaled session, SIGKILLs it at an
arbitrary point while a burst of edits is in flight, restarts it against
the same journal directory, and requires that every timing query answers
byte-identically to an uninterrupted twin that applied exactly the edits
the journal preserved. Run as: serve_kill_recover.py <path-to-gapd>
"""

import json
import shutil
import subprocess
import sys
import tempfile
import time

DESIGN = "mac8"
EDITS = 100
QUERIES = ["timing", "slacks", "top_paths", "qor"]


def frame(obj):
    return json.dumps(obj, separators=(",", ":")) + "\n"


def edit_frame(i):
    return frame({
        "cmd": "edit",
        "session": "s1",
        "edit": {
            "op": "set_drive",
            "inst": (7 * i + 3) % 400,
            "drive": 0.5 + 0.125 * (i % 40),
        },
    })


def start(gapd, journal_dir, threads=1):
    argv = [gapd, "--threads", str(threads)]
    if journal_dir:
        argv += ["--journal-dir", journal_dir]
    return subprocess.Popen(argv, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True)


def ask(proc, line):
    proc.stdin.write(line)
    proc.stdin.flush()
    reply = proc.stdout.readline()
    if not reply.endswith("\n"):
        raise AssertionError("truncated reply: %r" % reply)
    return reply.rstrip("\n")


def ask_ok(proc, line):
    reply = ask(proc, line)
    parsed = json.loads(reply)
    if not parsed.get("ok"):
        raise AssertionError("request failed: %s -> %s" % (line.strip(), reply))
    return reply


def shutdown(proc):
    try:
        ask(proc, frame({"cmd": "shutdown"}))
    finally:
        proc.stdin.close()
        proc.wait(timeout=60)


def run_round(gapd, kill_delay_s):
    journal_dir = tempfile.mkdtemp(prefix="gap_serve_kill_")
    try:
        # Victim: load, then fire the whole edit burst without reading
        # replies, and SIGKILL mid-flight.
        victim = start(gapd, journal_dir)
        ask_ok(victim, frame({"cmd": "load", "session": "s1",
                              "design": DESIGN}))
        for i in range(EDITS):
            victim.stdin.write(edit_frame(i))
        victim.stdin.flush()
        time.sleep(kill_delay_s)
        victim.kill()
        victim.wait(timeout=60)

        # Recovered server: replays the journal. Its stats reveal how many
        # edits survived (everything fsync'd before the kill).
        recovered = start(gapd, journal_dir)
        stats = json.loads(ask_ok(recovered, frame({"cmd": "stats"})))
        sessions = stats["result"]["sessions"]
        if len(sessions) != 1 or sessions[0]["name"] != "s1":
            raise AssertionError("recovery lost the session: %s" % stats)
        if sessions[0]["degraded"]:
            raise AssertionError("recovery degraded the session: %s" % stats)
        seq = int(sessions[0]["seq"])
        if not 0 <= seq <= EDITS:
            raise AssertionError("implausible recovered seq %d" % seq)
        answers = [ask_ok(recovered, frame({"cmd": q, "session": "s1"}))
                   for q in QUERIES]
        shutdown(recovered)

        # Twin: an uninterrupted journal-less run of exactly those edits.
        twin = start(gapd, None)
        ask_ok(twin, frame({"cmd": "load", "session": "s1",
                            "design": DESIGN}))
        for i in range(seq):
            ask_ok(twin, edit_frame(i))
        for q, expect in zip(QUERIES, answers):
            got = ask_ok(twin, frame({"cmd": q, "session": "s1"}))
            if got != expect:
                raise AssertionError(
                    "%s diverged after recovery (seq %d)\n  recovered: %s\n"
                    "  twin:      %s" % (q, seq, expect, got))
        shutdown(twin)

        # Thread-count invariance: recover the same journal at 4 threads.
        wide = start(gapd, journal_dir, threads=4)
        for q, expect in zip(QUERIES, answers):
            got = ask_ok(wide, frame({"cmd": q, "session": "s1"}))
            if got != expect:
                raise AssertionError(
                    "%s diverged at 4 threads (seq %d)" % (q, seq))
        shutdown(wide)
        return seq
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)


def main():
    if len(sys.argv) != 2:
        print("usage: serve_kill_recover.py <path-to-gapd>", file=sys.stderr)
        return 2
    gapd = sys.argv[1]
    # Two kill points: almost immediately (little or none of the burst is
    # journaled) and after a grace period (most or all of it is).
    for delay in (0.002, 0.25):
        seq = run_round(gapd, delay)
        print("kill after %.3fs: recovered %d/%d edits, replies identical"
              % (delay, seq, EDITS))
    print("serve_kill_recover: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
