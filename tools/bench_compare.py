#!/usr/bin/env python3
"""Diff two google-benchmark JSON snapshots and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
    tools/bench_compare.py CURRENT.json --baseline BENCH_baseline.json
    tools/bench_compare.py CURRENT.json --baseline FILE --write-baseline

All snapshots come from `bench_perf_tools --benchmark_format=json
--benchmark_out=FILE` (the CI benchmark-snapshot job stores them as
BENCH_*.json artifacts; the committed BENCH_baseline.json is the repo's
reference point, captured under GAP_BENCH_QUICK=1). Benchmarks are matched
by name; for each pair the real-time delta is reported, and any benchmark
slower by more than `--threshold` (default 15%) is flagged.

Exit codes: 0 = compared (regressions are reported but do not fail),
1 = at least one regression flagged AND --strict was given, 2 = bad input.
The default is report-only because benchmark noise on shared runners makes
a hard gate flaky; pipelines that control their hardware pass --strict.
--write-baseline refreshes the baseline file from CURRENT and exits 0.
"""

import argparse
import json
import shutil
import sys


def load_benchmarks(path):
    """name -> real_time in ns (aggregates like _mean are kept as-is)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read '{path}': {e}")
    out = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name")
        t = b.get("real_time")
        if name is None or t is None:
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            continue
        out[name] = t * scale
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "files",
        nargs="+",
        metavar="SNAPSHOT.json",
        help="BASELINE CURRENT, or just CURRENT with --baseline",
    )
    ap.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline snapshot (e.g. the committed BENCH_baseline.json)",
    )
    ap.add_argument(
        "--write-baseline",
        action="store_true",
        help="copy CURRENT over the --baseline file and exit",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that counts as a regression (default 0.15)",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on regressions (default: report only, exit 0)",
    )
    args = ap.parse_args()

    if len(args.files) == 2 and args.baseline is None:
        baseline_path, current_path = args.files
    elif len(args.files) == 1 and args.baseline is not None:
        baseline_path, current_path = args.baseline, args.files[0]
    else:
        sys.exit(
            "bench_compare: pass BASELINE CURRENT, or CURRENT --baseline PATH"
        )

    if args.write_baseline:
        if args.baseline is None:
            sys.exit("bench_compare: --write-baseline requires --baseline")
        load_benchmarks(current_path)  # validate before overwriting
        shutil.copyfile(current_path, baseline_path)
        print(f"wrote {baseline_path} from {current_path}")
        return 0

    base = load_benchmarks(baseline_path)
    cur = load_benchmarks(current_path)
    if not base or not cur:
        sys.exit("bench_compare: no benchmarks found in one of the inputs")

    common = sorted(set(base) & set(cur))
    gone = sorted(set(base) - set(cur))
    new = sorted(set(cur) - set(base))

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
    for name in common:
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        mark = ""
        if delta > args.threshold:
            mark = "  << REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            mark = "  (improved)"
        print(f"{name:50s} {b:10.0f}ns {c:10.0f}ns {delta:+7.1%}{mark}")
    for name in new:
        print(f"{name:50s} {'-':>12s} {cur[name]:10.0f}ns      new")
    for name in gone:
        print(f"{name:50s} {base[name]:10.0f}ns {'-':>12s}  removed")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) over "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1 if args.strict else 0
    print(f"\nno regressions over {args.threshold:.0%} "
          f"({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
