#!/usr/bin/env python3
"""Diff two google-benchmark JSON snapshots and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]

Both files come from `bench_perf_tools --benchmark_format=json
--benchmark_out=FILE` (the CI benchmark-snapshot job stores them as
BENCH_*.json artifacts). Benchmarks are matched by name; for each pair the
real-time delta is reported, and any benchmark slower by more than
`--threshold` (default 15%) is flagged.

Exit codes: 0 = no regressions, 1 = at least one regression flagged,
2 = bad input. The CI step running this is non-blocking (a report, not a
gate) — benchmark noise on shared runners makes a hard gate flaky — but
the exit code lets stricter pipelines gate on it if they choose.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> real_time in ns (aggregates like _mean are kept as-is)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read '{path}': {e}")
    out = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name")
        t = b.get("real_time")
        if name is None or t is None:
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            continue
        out[name] = t * scale
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="older snapshot (BENCH_*.json)")
    ap.add_argument("current", help="newer snapshot (BENCH_*.json)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that counts as a regression (default 0.15)",
    )
    args = ap.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)
    if not base or not cur:
        sys.exit("bench_compare: no benchmarks found in one of the inputs")

    common = sorted(set(base) & set(cur))
    gone = sorted(set(base) - set(cur))
    new = sorted(set(cur) - set(base))

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'delta':>8s}")
    for name in common:
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        mark = ""
        if delta > args.threshold:
            mark = "  << REGRESSION"
            regressions.append((name, delta))
        elif delta < -args.threshold:
            mark = "  (improved)"
        print(f"{name:50s} {b:10.0f}ns {c:10.0f}ns {delta:+7.1%}{mark}")
    for name in new:
        print(f"{name:50s} {'-':>12s} {cur[name]:10.0f}ns      new")
    for name in gone:
        print(f"{name:50s} {base[name]:10.0f}ns {'-':>12s}  removed")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) over "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nno regressions over {args.threshold:.0%} "
          f"({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
