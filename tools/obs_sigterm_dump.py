#!/usr/bin/env python3
"""SIGTERM graceful-drain check for gapd (docs/observability.md).

Drives a real gapd subprocess with a journaled session plus telemetry
outputs, sends SIGTERM, and requires the documented drain behavior:
exit code 0, a valid gap-flight-v1 dump next to the journal, a final
Prometheus exposition snapshot, and a chrome trace with the per-request
spans. Also exercises the in-protocol `dump` request and checks the
flight dump's deterministic section is byte-identical at --threads 1
vs 4. Run as: obs_sigterm_dump.py <path-to-gapd>
"""

import json
import shutil
import signal
import subprocess
import sys
import tempfile

DESIGN = "mac8"
EDITS = 12

EXPOSE_HEADER = "# gap-expose-v1"
WALL_MARKER = "# --- wall section (non-deterministic) ---"


def frame(obj):
    return json.dumps(obj, separators=(",", ":")) + "\n"


def edit_frame(i):
    return frame({
        "cmd": "edit",
        "session": "s1",
        "edit": {
            "op": "set_drive",
            "inst": (7 * i + 3) % 400,
            "drive": 0.5 + 0.125 * (i % 40),
        },
    })


def start(gapd, workdir, threads):
    argv = [
        gapd, "--threads", str(threads),
        "--journal-dir", workdir,
        "--expose-out", workdir + "/metrics.prom",
        "--expose-interval", "4",
        "--trace-out", workdir + "/trace.json",
    ]
    return subprocess.Popen(argv, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE, text=True)


def ask_ok(proc, line):
    proc.stdin.write(line)
    proc.stdin.flush()
    reply = proc.stdout.readline()
    parsed = json.loads(reply)
    if not parsed.get("ok"):
        raise AssertionError("request failed: %s -> %s" % (line.strip(), reply))
    return parsed


def flight_deterministic(text):
    """The dump minus its trailing non-deterministic "wall" member."""
    cut = text.rfind(',"wall":{')
    return text[:cut] + "}" if cut >= 0 else text


def run_round(gapd, threads):
    workdir = tempfile.mkdtemp(prefix="gap_obs_sigterm_")
    try:
        proc = start(gapd, workdir, threads)
        ask_ok(proc, frame({"cmd": "load", "session": "s1",
                            "design": DESIGN}))
        for i in range(EDITS):
            ask_ok(proc, edit_frame(i))
        ask_ok(proc, frame({"cmd": "timing", "session": "s1"}))

        # In-protocol dump: must name the file it wrote.
        dumped = ask_ok(proc, frame({"cmd": "dump"}))["result"]["dumped"]
        if len(dumped) != 1:
            raise AssertionError("dump wrote %r" % dumped)
        with open(dumped[0]) as f:
            mid_dump = json.load(f)
        if mid_dump.get("flight") != "gap-flight-v1":
            raise AssertionError("bad flight schema: %s" % mid_dump)

        # SIGTERM: the daemon drains, dumps, snapshots, and exits 0.
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
        if code != 0:
            raise AssertionError("SIGTERM exit code %d (want 0)" % code)

        flight_path = workdir + "/s1.flight.json"
        with open(flight_path) as f:
            flight_text = f.read()
        flight = json.loads(flight_text)
        if flight.get("flight") != "gap-flight-v1":
            raise AssertionError("bad flight dump: %s" % flight_text[:200])
        kinds = [e["kind"] for e in flight["events"]]
        for expected in ("request_begin", "request_end", "journal_fsync"):
            if expected not in kinds:
                raise AssertionError("missing %r in flight events: %s"
                                     % (expected, kinds))
        if len(flight["wall"]["us"]) != len(flight["events"]):
            raise AssertionError("wall/event length mismatch")

        with open(workdir + "/metrics.prom") as f:
            expose = f.read()
        if not expose.startswith(EXPOSE_HEADER + "\n"):
            raise AssertionError("bad exposition header: %r" % expose[:80])
        if WALL_MARKER not in expose:
            raise AssertionError("exposition lost its wall marker")
        if "gap_serve_requests" not in expose:
            raise AssertionError("exposition lost serve counters")

        with open(workdir + "/trace.json") as f:
            trace = json.load(f)
        names = {ev.get("name", "") for ev in trace.get("traceEvents", [])}
        if not any(n.startswith("serve::request#") for n in names):
            raise AssertionError("trace lost request spans: %s" % sorted(names))
        if "serve::journal_fsync" not in names:
            raise AssertionError("trace lost journal spans: %s" % sorted(names))

        det = flight_deterministic(flight_text)
        expose_det = expose.split(WALL_MARKER)[0]
        return det, expose_det
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main():
    if len(sys.argv) != 2:
        print("usage: obs_sigterm_dump.py <path-to-gapd>", file=sys.stderr)
        return 2
    gapd = sys.argv[1]
    flight_1, expose_1 = run_round(gapd, threads=1)
    flight_4, expose_4 = run_round(gapd, threads=4)
    if flight_1 != flight_4:
        raise AssertionError("flight deterministic section differs at "
                             "--threads 1 vs 4")
    if expose_1 != expose_4:
        raise AssertionError("exposition deterministic section differs at "
                             "--threads 1 vs 4")
    print("obs_sigterm_dump: OK (flight %d bytes, exposition %d bytes "
          "deterministic)" % (len(flight_1), len(expose_1)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
