/// \file gapstat.cpp
/// Telemetry CLI: show / diff / aggregate metrics JSON, Prometheus
/// exposition, and gap-flight-v1 flight-recorder files. All logic lives
/// in gap::obs::run_gapstat (src/obs/stat_cli.cpp) so the test suite can
/// exercise it in-process; this file only binds it to the process:
/// SIGPIPE is ignored and a broken stdout exits 5 with a diagnostic
/// (common/io_guard.hpp).

#include <iostream>

#include "common/io_guard.hpp"
#include "obs/stat_cli.hpp"

int main(int argc, char** argv) {
  gap::common::ignore_sigpipe();
  const int code =
      gap::obs::run_gapstat(argc - 1, argv + 1, std::cout, std::cerr);
  return gap::common::finish_stdout(code, std::cout, std::cerr, "gapstat");
}
