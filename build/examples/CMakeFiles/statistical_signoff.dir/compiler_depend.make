# Empty compiler generated dependencies file for statistical_signoff.
# This may be replaced when dependencies are built.
