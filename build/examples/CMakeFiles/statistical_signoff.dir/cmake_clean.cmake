file(REMOVE_RECURSE
  "CMakeFiles/statistical_signoff.dir/statistical_signoff.cpp.o"
  "CMakeFiles/statistical_signoff.dir/statistical_signoff.cpp.o.d"
  "statistical_signoff"
  "statistical_signoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistical_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
