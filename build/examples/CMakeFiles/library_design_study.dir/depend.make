# Empty dependencies file for library_design_study.
# This may be replaced when dependencies are built.
