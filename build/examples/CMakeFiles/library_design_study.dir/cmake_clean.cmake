file(REMOVE_RECURSE
  "CMakeFiles/library_design_study.dir/library_design_study.cpp.o"
  "CMakeFiles/library_design_study.dir/library_design_study.cpp.o.d"
  "library_design_study"
  "library_design_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_design_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
