file(REMOVE_RECURSE
  "CMakeFiles/asic_flow_explorer.dir/asic_flow_explorer.cpp.o"
  "CMakeFiles/asic_flow_explorer.dir/asic_flow_explorer.cpp.o.d"
  "asic_flow_explorer"
  "asic_flow_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asic_flow_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
