# Empty compiler generated dependencies file for asic_flow_explorer.
# This may be replaced when dependencies are built.
