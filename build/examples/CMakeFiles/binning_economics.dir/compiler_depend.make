# Empty compiler generated dependencies file for binning_economics.
# This may be replaced when dependencies are built.
