file(REMOVE_RECURSE
  "CMakeFiles/binning_economics.dir/binning_economics.cpp.o"
  "CMakeFiles/binning_economics.dir/binning_economics.cpp.o.d"
  "binning_economics"
  "binning_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binning_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
