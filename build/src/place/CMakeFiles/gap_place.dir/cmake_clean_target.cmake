file(REMOVE_RECURSE
  "libgap_place.a"
)
