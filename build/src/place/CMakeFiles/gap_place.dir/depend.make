# Empty dependencies file for gap_place.
# This may be replaced when dependencies are built.
