file(REMOVE_RECURSE
  "CMakeFiles/gap_place.dir/place.cpp.o"
  "CMakeFiles/gap_place.dir/place.cpp.o.d"
  "libgap_place.a"
  "libgap_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
