
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/checks.cpp" "src/netlist/CMakeFiles/gap_netlist.dir/checks.cpp.o" "gcc" "src/netlist/CMakeFiles/gap_netlist.dir/checks.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/gap_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/gap_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/sequential_sim.cpp" "src/netlist/CMakeFiles/gap_netlist.dir/sequential_sim.cpp.o" "gcc" "src/netlist/CMakeFiles/gap_netlist.dir/sequential_sim.cpp.o.d"
  "/root/repo/src/netlist/simulate.cpp" "src/netlist/CMakeFiles/gap_netlist.dir/simulate.cpp.o" "gcc" "src/netlist/CMakeFiles/gap_netlist.dir/simulate.cpp.o.d"
  "/root/repo/src/netlist/stats.cpp" "src/netlist/CMakeFiles/gap_netlist.dir/stats.cpp.o" "gcc" "src/netlist/CMakeFiles/gap_netlist.dir/stats.cpp.o.d"
  "/root/repo/src/netlist/sweep.cpp" "src/netlist/CMakeFiles/gap_netlist.dir/sweep.cpp.o" "gcc" "src/netlist/CMakeFiles/gap_netlist.dir/sweep.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/gap_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/gap_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/gap_library.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/gap_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
