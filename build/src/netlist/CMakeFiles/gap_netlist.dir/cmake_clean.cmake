file(REMOVE_RECURSE
  "CMakeFiles/gap_netlist.dir/checks.cpp.o"
  "CMakeFiles/gap_netlist.dir/checks.cpp.o.d"
  "CMakeFiles/gap_netlist.dir/netlist.cpp.o"
  "CMakeFiles/gap_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/gap_netlist.dir/sequential_sim.cpp.o"
  "CMakeFiles/gap_netlist.dir/sequential_sim.cpp.o.d"
  "CMakeFiles/gap_netlist.dir/simulate.cpp.o"
  "CMakeFiles/gap_netlist.dir/simulate.cpp.o.d"
  "CMakeFiles/gap_netlist.dir/stats.cpp.o"
  "CMakeFiles/gap_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/gap_netlist.dir/sweep.cpp.o"
  "CMakeFiles/gap_netlist.dir/sweep.cpp.o.d"
  "CMakeFiles/gap_netlist.dir/verilog.cpp.o"
  "CMakeFiles/gap_netlist.dir/verilog.cpp.o.d"
  "libgap_netlist.a"
  "libgap_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
