file(REMOVE_RECURSE
  "libgap_netlist.a"
)
