# Empty compiler generated dependencies file for gap_netlist.
# This may be replaced when dependencies are built.
