
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/library/builders.cpp" "src/library/CMakeFiles/gap_library.dir/builders.cpp.o" "gcc" "src/library/CMakeFiles/gap_library.dir/builders.cpp.o.d"
  "/root/repo/src/library/cell.cpp" "src/library/CMakeFiles/gap_library.dir/cell.cpp.o" "gcc" "src/library/CMakeFiles/gap_library.dir/cell.cpp.o.d"
  "/root/repo/src/library/liberty.cpp" "src/library/CMakeFiles/gap_library.dir/liberty.cpp.o" "gcc" "src/library/CMakeFiles/gap_library.dir/liberty.cpp.o.d"
  "/root/repo/src/library/library.cpp" "src/library/CMakeFiles/gap_library.dir/library.cpp.o" "gcc" "src/library/CMakeFiles/gap_library.dir/library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/gap_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
