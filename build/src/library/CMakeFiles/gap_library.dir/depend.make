# Empty dependencies file for gap_library.
# This may be replaced when dependencies are built.
