file(REMOVE_RECURSE
  "libgap_library.a"
)
