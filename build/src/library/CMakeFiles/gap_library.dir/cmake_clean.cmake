file(REMOVE_RECURSE
  "CMakeFiles/gap_library.dir/builders.cpp.o"
  "CMakeFiles/gap_library.dir/builders.cpp.o.d"
  "CMakeFiles/gap_library.dir/cell.cpp.o"
  "CMakeFiles/gap_library.dir/cell.cpp.o.d"
  "CMakeFiles/gap_library.dir/liberty.cpp.o"
  "CMakeFiles/gap_library.dir/liberty.cpp.o.d"
  "CMakeFiles/gap_library.dir/library.cpp.o"
  "CMakeFiles/gap_library.dir/library.cpp.o.d"
  "libgap_library.a"
  "libgap_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
