file(REMOVE_RECURSE
  "libgap_sizing.a"
)
