file(REMOVE_RECURSE
  "CMakeFiles/gap_sizing.dir/buffers.cpp.o"
  "CMakeFiles/gap_sizing.dir/buffers.cpp.o.d"
  "CMakeFiles/gap_sizing.dir/tilos.cpp.o"
  "CMakeFiles/gap_sizing.dir/tilos.cpp.o.d"
  "CMakeFiles/gap_sizing.dir/wires.cpp.o"
  "CMakeFiles/gap_sizing.dir/wires.cpp.o.d"
  "libgap_sizing.a"
  "libgap_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
