# Empty compiler generated dependencies file for gap_sizing.
# This may be replaced when dependencies are built.
