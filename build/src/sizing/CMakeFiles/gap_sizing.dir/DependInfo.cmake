
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sizing/buffers.cpp" "src/sizing/CMakeFiles/gap_sizing.dir/buffers.cpp.o" "gcc" "src/sizing/CMakeFiles/gap_sizing.dir/buffers.cpp.o.d"
  "/root/repo/src/sizing/tilos.cpp" "src/sizing/CMakeFiles/gap_sizing.dir/tilos.cpp.o" "gcc" "src/sizing/CMakeFiles/gap_sizing.dir/tilos.cpp.o.d"
  "/root/repo/src/sizing/wires.cpp" "src/sizing/CMakeFiles/gap_sizing.dir/wires.cpp.o" "gcc" "src/sizing/CMakeFiles/gap_sizing.dir/wires.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/gap_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/gap_library.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gap_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/gap_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
