file(REMOVE_RECURSE
  "CMakeFiles/gap_common.dir/rng.cpp.o"
  "CMakeFiles/gap_common.dir/rng.cpp.o.d"
  "CMakeFiles/gap_common.dir/stats.cpp.o"
  "CMakeFiles/gap_common.dir/stats.cpp.o.d"
  "CMakeFiles/gap_common.dir/table.cpp.o"
  "CMakeFiles/gap_common.dir/table.cpp.o.d"
  "libgap_common.a"
  "libgap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
