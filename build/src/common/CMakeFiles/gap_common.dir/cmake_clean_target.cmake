file(REMOVE_RECURSE
  "libgap_common.a"
)
