# Empty compiler generated dependencies file for gap_common.
# This may be replaced when dependencies are built.
