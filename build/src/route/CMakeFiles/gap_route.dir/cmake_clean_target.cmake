file(REMOVE_RECURSE
  "libgap_route.a"
)
