# Empty compiler generated dependencies file for gap_route.
# This may be replaced when dependencies are built.
