file(REMOVE_RECURSE
  "CMakeFiles/gap_route.dir/router.cpp.o"
  "CMakeFiles/gap_route.dir/router.cpp.o.d"
  "libgap_route.a"
  "libgap_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
