
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/aig.cpp" "src/logic/CMakeFiles/gap_logic.dir/aig.cpp.o" "gcc" "src/logic/CMakeFiles/gap_logic.dir/aig.cpp.o.d"
  "/root/repo/src/logic/transforms.cpp" "src/logic/CMakeFiles/gap_logic.dir/transforms.cpp.o" "gcc" "src/logic/CMakeFiles/gap_logic.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
