file(REMOVE_RECURSE
  "libgap_logic.a"
)
