file(REMOVE_RECURSE
  "CMakeFiles/gap_logic.dir/aig.cpp.o"
  "CMakeFiles/gap_logic.dir/aig.cpp.o.d"
  "CMakeFiles/gap_logic.dir/transforms.cpp.o"
  "CMakeFiles/gap_logic.dir/transforms.cpp.o.d"
  "libgap_logic.a"
  "libgap_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
