# Empty dependencies file for gap_logic.
# This may be replaced when dependencies are built.
