file(REMOVE_RECURSE
  "CMakeFiles/gap_designs.dir/alu.cpp.o"
  "CMakeFiles/gap_designs.dir/alu.cpp.o.d"
  "CMakeFiles/gap_designs.dir/bus_controller.cpp.o"
  "CMakeFiles/gap_designs.dir/bus_controller.cpp.o.d"
  "CMakeFiles/gap_designs.dir/cpu.cpp.o"
  "CMakeFiles/gap_designs.dir/cpu.cpp.o.d"
  "CMakeFiles/gap_designs.dir/crc.cpp.o"
  "CMakeFiles/gap_designs.dir/crc.cpp.o.d"
  "CMakeFiles/gap_designs.dir/fir.cpp.o"
  "CMakeFiles/gap_designs.dir/fir.cpp.o.d"
  "CMakeFiles/gap_designs.dir/mac.cpp.o"
  "CMakeFiles/gap_designs.dir/mac.cpp.o.d"
  "CMakeFiles/gap_designs.dir/registry.cpp.o"
  "CMakeFiles/gap_designs.dir/registry.cpp.o.d"
  "CMakeFiles/gap_designs.dir/soc.cpp.o"
  "CMakeFiles/gap_designs.dir/soc.cpp.o.d"
  "libgap_designs.a"
  "libgap_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
