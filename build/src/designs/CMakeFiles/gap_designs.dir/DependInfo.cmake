
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/alu.cpp" "src/designs/CMakeFiles/gap_designs.dir/alu.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/alu.cpp.o.d"
  "/root/repo/src/designs/bus_controller.cpp" "src/designs/CMakeFiles/gap_designs.dir/bus_controller.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/bus_controller.cpp.o.d"
  "/root/repo/src/designs/cpu.cpp" "src/designs/CMakeFiles/gap_designs.dir/cpu.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/cpu.cpp.o.d"
  "/root/repo/src/designs/crc.cpp" "src/designs/CMakeFiles/gap_designs.dir/crc.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/crc.cpp.o.d"
  "/root/repo/src/designs/fir.cpp" "src/designs/CMakeFiles/gap_designs.dir/fir.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/fir.cpp.o.d"
  "/root/repo/src/designs/mac.cpp" "src/designs/CMakeFiles/gap_designs.dir/mac.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/mac.cpp.o.d"
  "/root/repo/src/designs/registry.cpp" "src/designs/CMakeFiles/gap_designs.dir/registry.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/registry.cpp.o.d"
  "/root/repo/src/designs/soc.cpp" "src/designs/CMakeFiles/gap_designs.dir/soc.cpp.o" "gcc" "src/designs/CMakeFiles/gap_designs.dir/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datapath/CMakeFiles/gap_datapath.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gap_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/gap_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/gap_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/gap_library.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/gap_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
