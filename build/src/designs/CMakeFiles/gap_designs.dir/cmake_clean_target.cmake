file(REMOVE_RECURSE
  "libgap_designs.a"
)
