# Empty compiler generated dependencies file for gap_designs.
# This may be replaced when dependencies are built.
