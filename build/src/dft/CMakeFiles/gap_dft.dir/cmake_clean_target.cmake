file(REMOVE_RECURSE
  "libgap_dft.a"
)
