# Empty dependencies file for gap_dft.
# This may be replaced when dependencies are built.
