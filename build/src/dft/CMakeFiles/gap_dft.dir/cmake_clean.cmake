file(REMOVE_RECURSE
  "CMakeFiles/gap_dft.dir/scan.cpp.o"
  "CMakeFiles/gap_dft.dir/scan.cpp.o.d"
  "libgap_dft.a"
  "libgap_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
