file(REMOVE_RECURSE
  "libgap_tech.a"
)
