
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/scaling.cpp" "src/tech/CMakeFiles/gap_tech.dir/scaling.cpp.o" "gcc" "src/tech/CMakeFiles/gap_tech.dir/scaling.cpp.o.d"
  "/root/repo/src/tech/technology.cpp" "src/tech/CMakeFiles/gap_tech.dir/technology.cpp.o" "gcc" "src/tech/CMakeFiles/gap_tech.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
