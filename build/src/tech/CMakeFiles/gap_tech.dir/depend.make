# Empty dependencies file for gap_tech.
# This may be replaced when dependencies are built.
