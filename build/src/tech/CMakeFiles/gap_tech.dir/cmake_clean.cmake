file(REMOVE_RECURSE
  "CMakeFiles/gap_tech.dir/scaling.cpp.o"
  "CMakeFiles/gap_tech.dir/scaling.cpp.o.d"
  "CMakeFiles/gap_tech.dir/technology.cpp.o"
  "CMakeFiles/gap_tech.dir/technology.cpp.o.d"
  "libgap_tech.a"
  "libgap_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
