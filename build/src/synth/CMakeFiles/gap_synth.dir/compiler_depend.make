# Empty compiler generated dependencies file for gap_synth.
# This may be replaced when dependencies are built.
