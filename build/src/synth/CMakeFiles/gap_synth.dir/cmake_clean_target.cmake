file(REMOVE_RECURSE
  "libgap_synth.a"
)
