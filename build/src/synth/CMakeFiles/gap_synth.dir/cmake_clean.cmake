file(REMOVE_RECURSE
  "CMakeFiles/gap_synth.dir/mapper.cpp.o"
  "CMakeFiles/gap_synth.dir/mapper.cpp.o.d"
  "libgap_synth.a"
  "libgap_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
