file(REMOVE_RECURSE
  "CMakeFiles/gap_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/gap_pipeline.dir/pipeline.cpp.o.d"
  "CMakeFiles/gap_pipeline.dir/retiming.cpp.o"
  "CMakeFiles/gap_pipeline.dir/retiming.cpp.o.d"
  "libgap_pipeline.a"
  "libgap_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
