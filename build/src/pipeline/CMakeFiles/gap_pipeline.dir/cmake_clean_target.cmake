file(REMOVE_RECURSE
  "libgap_pipeline.a"
)
