# Empty compiler generated dependencies file for gap_pipeline.
# This may be replaced when dependencies are built.
