
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/borrowing.cpp" "src/sta/CMakeFiles/gap_sta.dir/borrowing.cpp.o" "gcc" "src/sta/CMakeFiles/gap_sta.dir/borrowing.cpp.o.d"
  "/root/repo/src/sta/report.cpp" "src/sta/CMakeFiles/gap_sta.dir/report.cpp.o" "gcc" "src/sta/CMakeFiles/gap_sta.dir/report.cpp.o.d"
  "/root/repo/src/sta/sta.cpp" "src/sta/CMakeFiles/gap_sta.dir/sta.cpp.o" "gcc" "src/sta/CMakeFiles/gap_sta.dir/sta.cpp.o.d"
  "/root/repo/src/sta/statistical.cpp" "src/sta/CMakeFiles/gap_sta.dir/statistical.cpp.o" "gcc" "src/sta/CMakeFiles/gap_sta.dir/statistical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/gap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gap_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/gap_library.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/gap_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
