# Empty dependencies file for gap_sta.
# This may be replaced when dependencies are built.
