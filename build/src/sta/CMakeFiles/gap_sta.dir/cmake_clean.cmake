file(REMOVE_RECURSE
  "CMakeFiles/gap_sta.dir/borrowing.cpp.o"
  "CMakeFiles/gap_sta.dir/borrowing.cpp.o.d"
  "CMakeFiles/gap_sta.dir/report.cpp.o"
  "CMakeFiles/gap_sta.dir/report.cpp.o.d"
  "CMakeFiles/gap_sta.dir/sta.cpp.o"
  "CMakeFiles/gap_sta.dir/sta.cpp.o.d"
  "CMakeFiles/gap_sta.dir/statistical.cpp.o"
  "CMakeFiles/gap_sta.dir/statistical.cpp.o.d"
  "libgap_sta.a"
  "libgap_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
