file(REMOVE_RECURSE
  "libgap_sta.a"
)
