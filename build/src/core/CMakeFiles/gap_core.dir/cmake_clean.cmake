file(REMOVE_RECURSE
  "CMakeFiles/gap_core.dir/chip.cpp.o"
  "CMakeFiles/gap_core.dir/chip.cpp.o.d"
  "CMakeFiles/gap_core.dir/flow.cpp.o"
  "CMakeFiles/gap_core.dir/flow.cpp.o.d"
  "CMakeFiles/gap_core.dir/gap.cpp.o"
  "CMakeFiles/gap_core.dir/gap.cpp.o.d"
  "CMakeFiles/gap_core.dir/methodology.cpp.o"
  "CMakeFiles/gap_core.dir/methodology.cpp.o.d"
  "CMakeFiles/gap_core.dir/migrate.cpp.o"
  "CMakeFiles/gap_core.dir/migrate.cpp.o.d"
  "CMakeFiles/gap_core.dir/processors.cpp.o"
  "CMakeFiles/gap_core.dir/processors.cpp.o.d"
  "libgap_core.a"
  "libgap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
