# Empty compiler generated dependencies file for gap_core.
# This may be replaced when dependencies are built.
