file(REMOVE_RECURSE
  "libgap_core.a"
)
