# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tech")
subdirs("library")
subdirs("netlist")
subdirs("logic")
subdirs("datapath")
subdirs("synth")
subdirs("wire")
subdirs("sta")
subdirs("floorplan")
subdirs("place")
subdirs("sizing")
subdirs("clock")
subdirs("pipeline")
subdirs("variation")
subdirs("power")
subdirs("dft")
subdirs("route")
subdirs("noise")
subdirs("designs")
subdirs("core")
