file(REMOVE_RECURSE
  "libgap_clock.a"
)
