# Empty dependencies file for gap_clock.
# This may be replaced when dependencies are built.
