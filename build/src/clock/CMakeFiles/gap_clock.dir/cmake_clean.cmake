file(REMOVE_RECURSE
  "CMakeFiles/gap_clock.dir/htree.cpp.o"
  "CMakeFiles/gap_clock.dir/htree.cpp.o.d"
  "CMakeFiles/gap_clock.dir/useful_skew.cpp.o"
  "CMakeFiles/gap_clock.dir/useful_skew.cpp.o.d"
  "libgap_clock.a"
  "libgap_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
