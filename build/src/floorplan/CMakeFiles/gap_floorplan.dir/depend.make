# Empty dependencies file for gap_floorplan.
# This may be replaced when dependencies are built.
