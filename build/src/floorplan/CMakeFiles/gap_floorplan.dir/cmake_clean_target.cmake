file(REMOVE_RECURSE
  "libgap_floorplan.a"
)
