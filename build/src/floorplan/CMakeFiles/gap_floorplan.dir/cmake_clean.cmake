file(REMOVE_RECURSE
  "CMakeFiles/gap_floorplan.dir/floorplan.cpp.o"
  "CMakeFiles/gap_floorplan.dir/floorplan.cpp.o.d"
  "libgap_floorplan.a"
  "libgap_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
