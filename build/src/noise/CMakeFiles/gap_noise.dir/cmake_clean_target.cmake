file(REMOVE_RECURSE
  "libgap_noise.a"
)
