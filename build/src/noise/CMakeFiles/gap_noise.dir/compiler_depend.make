# Empty compiler generated dependencies file for gap_noise.
# This may be replaced when dependencies are built.
