file(REMOVE_RECURSE
  "CMakeFiles/gap_noise.dir/crosstalk.cpp.o"
  "CMakeFiles/gap_noise.dir/crosstalk.cpp.o.d"
  "libgap_noise.a"
  "libgap_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
