file(REMOVE_RECURSE
  "libgap_wire.a"
)
