file(REMOVE_RECURSE
  "CMakeFiles/gap_wire.dir/elmore.cpp.o"
  "CMakeFiles/gap_wire.dir/elmore.cpp.o.d"
  "CMakeFiles/gap_wire.dir/repeaters.cpp.o"
  "CMakeFiles/gap_wire.dir/repeaters.cpp.o.d"
  "libgap_wire.a"
  "libgap_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
