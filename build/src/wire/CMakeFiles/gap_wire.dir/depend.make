# Empty dependencies file for gap_wire.
# This may be replaced when dependencies are built.
