file(REMOVE_RECURSE
  "libgap_variation.a"
)
