file(REMOVE_RECURSE
  "CMakeFiles/gap_variation.dir/economics.cpp.o"
  "CMakeFiles/gap_variation.dir/economics.cpp.o.d"
  "CMakeFiles/gap_variation.dir/variation.cpp.o"
  "CMakeFiles/gap_variation.dir/variation.cpp.o.d"
  "libgap_variation.a"
  "libgap_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
