# Empty dependencies file for gap_variation.
# This may be replaced when dependencies are built.
