# Empty dependencies file for gap_power.
# This may be replaced when dependencies are built.
