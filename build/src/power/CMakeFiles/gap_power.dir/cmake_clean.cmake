file(REMOVE_RECURSE
  "CMakeFiles/gap_power.dir/activity.cpp.o"
  "CMakeFiles/gap_power.dir/activity.cpp.o.d"
  "CMakeFiles/gap_power.dir/power.cpp.o"
  "CMakeFiles/gap_power.dir/power.cpp.o.d"
  "libgap_power.a"
  "libgap_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
