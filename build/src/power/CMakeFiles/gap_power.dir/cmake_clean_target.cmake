file(REMOVE_RECURSE
  "libgap_power.a"
)
