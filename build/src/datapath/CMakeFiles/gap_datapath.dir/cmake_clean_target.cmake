file(REMOVE_RECURSE
  "libgap_datapath.a"
)
