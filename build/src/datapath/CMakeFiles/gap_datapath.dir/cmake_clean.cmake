file(REMOVE_RECURSE
  "CMakeFiles/gap_datapath.dir/adders.cpp.o"
  "CMakeFiles/gap_datapath.dir/adders.cpp.o.d"
  "CMakeFiles/gap_datapath.dir/encoders.cpp.o"
  "CMakeFiles/gap_datapath.dir/encoders.cpp.o.d"
  "CMakeFiles/gap_datapath.dir/multipliers.cpp.o"
  "CMakeFiles/gap_datapath.dir/multipliers.cpp.o.d"
  "CMakeFiles/gap_datapath.dir/shifters.cpp.o"
  "CMakeFiles/gap_datapath.dir/shifters.cpp.o.d"
  "libgap_datapath.a"
  "libgap_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
