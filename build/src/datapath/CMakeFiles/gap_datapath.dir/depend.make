# Empty dependencies file for gap_datapath.
# This may be replaced when dependencies are built.
