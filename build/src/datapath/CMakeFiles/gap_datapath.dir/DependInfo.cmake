
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datapath/adders.cpp" "src/datapath/CMakeFiles/gap_datapath.dir/adders.cpp.o" "gcc" "src/datapath/CMakeFiles/gap_datapath.dir/adders.cpp.o.d"
  "/root/repo/src/datapath/encoders.cpp" "src/datapath/CMakeFiles/gap_datapath.dir/encoders.cpp.o" "gcc" "src/datapath/CMakeFiles/gap_datapath.dir/encoders.cpp.o.d"
  "/root/repo/src/datapath/multipliers.cpp" "src/datapath/CMakeFiles/gap_datapath.dir/multipliers.cpp.o" "gcc" "src/datapath/CMakeFiles/gap_datapath.dir/multipliers.cpp.o.d"
  "/root/repo/src/datapath/shifters.cpp" "src/datapath/CMakeFiles/gap_datapath.dir/shifters.cpp.o" "gcc" "src/datapath/CMakeFiles/gap_datapath.dir/shifters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/gap_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
