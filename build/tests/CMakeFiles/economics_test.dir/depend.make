# Empty dependencies file for economics_test.
# This may be replaced when dependencies are built.
