file(REMOVE_RECURSE
  "CMakeFiles/economics_test.dir/economics_test.cpp.o"
  "CMakeFiles/economics_test.dir/economics_test.cpp.o.d"
  "economics_test"
  "economics_test.pdb"
  "economics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
