file(REMOVE_RECURSE
  "CMakeFiles/sequential_sim_test.dir/sequential_sim_test.cpp.o"
  "CMakeFiles/sequential_sim_test.dir/sequential_sim_test.cpp.o.d"
  "sequential_sim_test"
  "sequential_sim_test.pdb"
  "sequential_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
