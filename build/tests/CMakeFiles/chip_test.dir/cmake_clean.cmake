file(REMOVE_RECURSE
  "CMakeFiles/chip_test.dir/chip_test.cpp.o"
  "CMakeFiles/chip_test.dir/chip_test.cpp.o.d"
  "chip_test"
  "chip_test.pdb"
  "chip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
