
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/useful_skew_test.cpp" "tests/CMakeFiles/useful_skew_test.dir/useful_skew_test.cpp.o" "gcc" "tests/CMakeFiles/useful_skew_test.dir/useful_skew_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clock/CMakeFiles/gap_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/gap_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gap_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/datapath/CMakeFiles/gap_datapath.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/gap_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gap_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/gap_library.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/gap_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/gap_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
