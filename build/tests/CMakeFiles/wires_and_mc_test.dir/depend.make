# Empty dependencies file for wires_and_mc_test.
# This may be replaced when dependencies are built.
