file(REMOVE_RECURSE
  "CMakeFiles/wires_and_mc_test.dir/wires_and_mc_test.cpp.o"
  "CMakeFiles/wires_and_mc_test.dir/wires_and_mc_test.cpp.o.d"
  "wires_and_mc_test"
  "wires_and_mc_test.pdb"
  "wires_and_mc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wires_and_mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
