# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wires_and_mc_test.
