file(REMOVE_RECURSE
  "CMakeFiles/hold_test.dir/hold_test.cpp.o"
  "CMakeFiles/hold_test.dir/hold_test.cpp.o.d"
  "hold_test"
  "hold_test.pdb"
  "hold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
