# Empty dependencies file for hold_test.
# This may be replaced when dependencies are built.
