file(REMOVE_RECURSE
  "CMakeFiles/latch_pipeline_test.dir/latch_pipeline_test.cpp.o"
  "CMakeFiles/latch_pipeline_test.dir/latch_pipeline_test.cpp.o.d"
  "latch_pipeline_test"
  "latch_pipeline_test.pdb"
  "latch_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latch_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
