file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_tools.dir/bench/bench_perf_tools.cpp.o"
  "CMakeFiles/bench_perf_tools.dir/bench/bench_perf_tools.cpp.o.d"
  "bench/bench_perf_tools"
  "bench/bench_perf_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
