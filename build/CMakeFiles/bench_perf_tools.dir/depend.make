# Empty dependencies file for bench_perf_tools.
# This may be replaced when dependencies are built.
