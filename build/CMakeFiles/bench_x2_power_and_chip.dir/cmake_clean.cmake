file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_power_and_chip.dir/bench/bench_x2_power_and_chip.cpp.o"
  "CMakeFiles/bench_x2_power_and_chip.dir/bench/bench_x2_power_and_chip.cpp.o.d"
  "bench/bench_x2_power_and_chip"
  "bench/bench_x2_power_and_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_power_and_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
