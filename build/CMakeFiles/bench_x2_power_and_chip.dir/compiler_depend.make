# Empty compiler generated dependencies file for bench_x2_power_and_chip.
# This may be replaced when dependencies are built.
