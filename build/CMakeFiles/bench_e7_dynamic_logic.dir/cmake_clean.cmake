file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_dynamic_logic.dir/bench/bench_e7_dynamic_logic.cpp.o"
  "CMakeFiles/bench_e7_dynamic_logic.dir/bench/bench_e7_dynamic_logic.cpp.o.d"
  "bench/bench_e7_dynamic_logic"
  "bench/bench_e7_dynamic_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_dynamic_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
