# Empty dependencies file for bench_e7_dynamic_logic.
# This may be replaced when dependencies are built.
