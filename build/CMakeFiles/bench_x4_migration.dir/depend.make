# Empty dependencies file for bench_x4_migration.
# This may be replaced when dependencies are built.
