file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_migration.dir/bench/bench_x4_migration.cpp.o"
  "CMakeFiles/bench_x4_migration.dir/bench/bench_x4_migration.cpp.o.d"
  "bench/bench_x4_migration"
  "bench/bench_x4_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
