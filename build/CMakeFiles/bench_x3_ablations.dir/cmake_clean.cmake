file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_ablations.dir/bench/bench_x3_ablations.cpp.o"
  "CMakeFiles/bench_x3_ablations.dir/bench/bench_x3_ablations.cpp.o.d"
  "bench/bench_x3_ablations"
  "bench/bench_x3_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
