# Empty dependencies file for bench_x3_ablations.
# This may be replaced when dependencies are built.
