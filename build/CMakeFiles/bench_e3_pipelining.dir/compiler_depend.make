# Empty compiler generated dependencies file for bench_e3_pipelining.
# This may be replaced when dependencies are built.
