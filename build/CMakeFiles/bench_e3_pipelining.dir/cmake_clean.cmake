file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_pipelining.dir/bench/bench_e3_pipelining.cpp.o"
  "CMakeFiles/bench_e3_pipelining.dir/bench/bench_e3_pipelining.cpp.o.d"
  "bench/bench_e3_pipelining"
  "bench/bench_e3_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
