# Empty compiler generated dependencies file for gapflow.
# This may be replaced when dependencies are built.
