file(REMOVE_RECURSE
  "CMakeFiles/gapflow.dir/tools/gapflow.cpp.o"
  "CMakeFiles/gapflow.dir/tools/gapflow.cpp.o.d"
  "gapflow"
  "gapflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
