
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_factor_decomposition.cpp" "CMakeFiles/bench_e2_factor_decomposition.dir/bench/bench_e2_factor_decomposition.cpp.o" "gcc" "CMakeFiles/bench_e2_factor_decomposition.dir/bench/bench_e2_factor_decomposition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/gap_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/datapath/CMakeFiles/gap_datapath.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gap_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/gap_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/gap_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/gap_place.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/gap_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/sizing/CMakeFiles/gap_sizing.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/gap_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/clock/CMakeFiles/gap_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/gap_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/gap_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/gap_route.dir/DependInfo.cmake"
  "/root/repo/build/src/dft/CMakeFiles/gap_dft.dir/DependInfo.cmake"
  "/root/repo/build/src/noise/CMakeFiles/gap_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gap_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/gap_library.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/gap_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
