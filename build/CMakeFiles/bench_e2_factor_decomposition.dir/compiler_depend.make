# Empty compiler generated dependencies file for bench_e2_factor_decomposition.
# This may be replaced when dependencies are built.
