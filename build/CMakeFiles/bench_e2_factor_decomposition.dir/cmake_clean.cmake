file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_factor_decomposition.dir/bench/bench_e2_factor_decomposition.cpp.o"
  "CMakeFiles/bench_e2_factor_decomposition.dir/bench/bench_e2_factor_decomposition.cpp.o.d"
  "bench/bench_e2_factor_decomposition"
  "bench/bench_e2_factor_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_factor_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
