file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_custom_techniques.dir/bench/bench_x1_custom_techniques.cpp.o"
  "CMakeFiles/bench_x1_custom_techniques.dir/bench/bench_x1_custom_techniques.cpp.o.d"
  "bench/bench_x1_custom_techniques"
  "bench/bench_x1_custom_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_custom_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
