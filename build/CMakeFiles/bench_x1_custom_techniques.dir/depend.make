# Empty dependencies file for bench_x1_custom_techniques.
# This may be replaced when dependencies are built.
