file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_clocking_and_macros.dir/bench/bench_e4_clocking_and_macros.cpp.o"
  "CMakeFiles/bench_e4_clocking_and_macros.dir/bench/bench_e4_clocking_and_macros.cpp.o.d"
  "bench/bench_e4_clocking_and_macros"
  "bench/bench_e4_clocking_and_macros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_clocking_and_macros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
