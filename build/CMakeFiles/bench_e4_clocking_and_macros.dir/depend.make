# Empty dependencies file for bench_e4_clocking_and_macros.
# This may be replaced when dependencies are built.
