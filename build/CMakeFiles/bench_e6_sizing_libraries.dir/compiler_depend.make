# Empty compiler generated dependencies file for bench_e6_sizing_libraries.
# This may be replaced when dependencies are built.
