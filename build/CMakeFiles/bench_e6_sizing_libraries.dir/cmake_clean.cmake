file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_sizing_libraries.dir/bench/bench_e6_sizing_libraries.cpp.o"
  "CMakeFiles/bench_e6_sizing_libraries.dir/bench/bench_e6_sizing_libraries.cpp.o.d"
  "bench/bench_e6_sizing_libraries"
  "bench/bench_e6_sizing_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_sizing_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
