# Empty compiler generated dependencies file for bench_e1_processor_survey.
# This may be replaced when dependencies are built.
