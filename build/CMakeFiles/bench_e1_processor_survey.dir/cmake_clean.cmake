file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_processor_survey.dir/bench/bench_e1_processor_survey.cpp.o"
  "CMakeFiles/bench_e1_processor_survey.dir/bench/bench_e1_processor_survey.cpp.o.d"
  "bench/bench_e1_processor_survey"
  "bench/bench_e1_processor_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_processor_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
