file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_floorplanning.dir/bench/bench_e5_floorplanning.cpp.o"
  "CMakeFiles/bench_e5_floorplanning.dir/bench/bench_e5_floorplanning.cpp.o.d"
  "bench/bench_e5_floorplanning"
  "bench/bench_e5_floorplanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_floorplanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
