# Empty dependencies file for bench_e8_process_variation.
# This may be replaced when dependencies are built.
