# Empty dependencies file for bench_e9_conclusions.
# This may be replaced when dependencies are built.
