file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_conclusions.dir/bench/bench_e9_conclusions.cpp.o"
  "CMakeFiles/bench_e9_conclusions.dir/bench/bench_e9_conclusions.cpp.o.d"
  "bench/bench_e9_conclusions"
  "bench/bench_e9_conclusions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_conclusions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
